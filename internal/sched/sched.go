// Package sched builds the chip-level test schedule of Sections 3 and 5.1:
// for each embedded core it finds reservation-aware justification paths
// from chip inputs to every core input and propagation paths from every
// core output to chip outputs, inserting system-level test multiplexers
// where no path exists, and computes the test application time
//
//	TAT(core) = HSCANvectors × max(J, 1) + tail
//
// where J is the per-vector justification period (the DISPLAY's 525×9+3 in
// Section 3) and tail flushes the final response. The global TAT is the
// sum over cores, with memory BIST running concurrently.
package sched

import (
	"fmt"
	"sort"

	"repro/internal/ccg"
	"repro/internal/cell"
	"repro/internal/obs"
	"repro/internal/soc"
)

// PortSchedule is the path serving one core port.
type PortSchedule struct {
	Port     string
	Path     *ccg.PathResult
	Arrival  int
	AddedMux bool // a system-level test mux had to be inserted
}

// Mux is one system-level test multiplexer the scheduler inserted while
// planning a core: the CCG edge endpoints, the served port and its
// width. Recording insertions per core is what lets the incremental
// delta evaluator replay an unaffected core's muxes into a spliced graph
// — and prove that a recomputed core made exactly the decisions the base
// schedule made.
type Mux struct {
	From, To int // CCG node indices
	Port     string
	Input    bool
	Width    int
}

// CoreSchedule is the test schedule of one core.
type CoreSchedule struct {
	Core         string
	Inputs       []PortSchedule
	Outputs      []PortSchedule
	Muxes        []Mux // system-level test muxes inserted for this core
	Period       int   // J: cycles to deliver one vector to all inputs
	ObserveLat   int   // worst output-to-PO propagation latency
	Tail         int
	HSCANVectors int
	TAT          int
}

// Result is the chip-wide schedule.
type Result struct {
	Cores    []*CoreSchedule
	MuxArea  cell.Area // system-level test multiplexers added
	TotalTAT int       // sum over cores (sequential testing)
}

// CoreTAT returns the named core's TAT, or -1.
func (r *Result) CoreTAT(core string) int {
	for _, cs := range r.Cores {
		if cs.Core == core {
			return cs.TAT
		}
	}
	return -1
}

// Schedule computes the chip test schedule on a freshly built CCG. The
// graph is mutated: system-level test-mux edges are added where needed
// (the PREPROCESSOR's Address output in Figure 9 gets exactly such a mux).
// The first unschedulable core aborts the build; BuildPartial is the
// degrading variant that skips and diagnoses instead.
func Schedule(ch *soc.Chip, g *ccg.Graph) (*Result, error) {
	root := obs.Start(nil, "sched")
	defer root.End()
	res := &Result{}
	fi := ccg.NewFinder()
	for _, c := range ch.TestableCores() {
		if c.Disabled != "" {
			return nil, fmt.Errorf("sched: core %s disabled: %s", c.Name, c.Disabled)
		}
		sp := obs.Start(root, "sched/"+c.Name)
		cs, err := scheduleCore(ch, g, fi, c, res, nil)
		sp.End()
		if err != nil {
			return nil, err
		}
		res.Cores = append(res.Cores, cs)
		res.TotalTAT += cs.TAT
		obs.C("sched.cores_scheduled").Inc()
	}
	return res, nil
}

// ScheduleCore plans one core's test on g exactly as a full Schedule run
// would at this core's turn, accumulating inserted-mux area into res. It
// is the per-core entry point of the incremental delta evaluator: after
// replaying the unaffected prefix of a base schedule (muxes included),
// re-scheduling only the invalidated cores through here reproduces the
// full run bit-for-bit. fi may be nil; a shared Finder avoids per-call
// buffer allocation.
func ScheduleCore(ch *soc.Chip, g *ccg.Graph, fi *ccg.Finder, c *soc.Core, res *Result) (*CoreSchedule, error) {
	if fi == nil {
		fi = ccg.NewFinder()
	}
	return scheduleCore(ch, g, fi, c, res, nil)
}

// scheduleCore plans one core's test. allowMux gates the system-level
// test-mux fallback per port (nil allows every insertion, the design-time
// behaviour); a denied or futile insertion surfaces as *UnreachableError.
func scheduleCore(ch *soc.Chip, g *ccg.Graph, fi *ccg.Finder, c *soc.Core, res *Result, allowMux func(core, port string, input bool) bool) (*CoreSchedule, error) {
	cs := &CoreSchedule{Core: c.Name}
	resv := ccg.Reservations{}
	pis := g.PINodes()
	pos := g.PONodes()

	// Justify every core input from the chip PIs, reserving edges so
	// shared transparency logic serializes across inputs (Section 5.1).
	inPorts := inputPortNames(c)
	for _, port := range inPorts {
		target, ok := g.NodeIndex(c.Name + "." + port)
		if !ok {
			return nil, fmt.Errorf("sched: missing CCG node %s.%s", c.Name, port)
		}
		p := fi.ShortestPath(g, pis, target, resv)
		added := false
		if p == nil {
			// No existing path: connect the input to a PI with a
			// system-level test multiplexer and retry.
			if allowMux != nil && !allowMux(c.Name, port, true) {
				return nil, &UnreachableError{Core: c.Name, Port: port, Input: true, MuxDenied: true}
			}
			width := portWidth(c, port)
			pi, err := PickPin(g, ch.PIs, width)
			if err != nil {
				return nil, fmt.Errorf("sched: test mux for %s.%s: %w", c.Name, port, err)
			}
			g.AddTestMux(pi, target)
			res.MuxArea.Add(cell.Mux2, width)
			cs.Muxes = append(cs.Muxes, Mux{From: pi, To: target, Port: port, Input: true, Width: width})
			obs.C("sched.test_muxes_added").Inc()
			added = true
			p = fi.ShortestPath(g, pis, target, resv)
			if p == nil {
				return nil, &UnreachableError{Core: c.Name, Port: port, Input: true}
			}
		}
		g.ReservePath(p, resv)
		cs.Inputs = append(cs.Inputs, PortSchedule{Port: port, Path: p, Arrival: p.Arrival, AddedMux: added})
		if p.Arrival > cs.Period {
			cs.Period = p.Arrival
		}
	}
	if cs.Period < 1 {
		cs.Period = 1
	}

	// Propagate every core output to a chip PO. Responses stream while the
	// next vector is justified, so observation uses fresh reservations.
	oresv := ccg.Reservations{}
	for _, port := range outputPortNames(c) {
		source, ok := g.NodeIndex(c.Name + "." + port)
		if !ok {
			return nil, fmt.Errorf("sched: missing CCG node %s.%s", c.Name, port)
		}
		p := bestPathToPO(fi, g, source, pos, oresv)
		added := false
		if p == nil {
			if allowMux != nil && !allowMux(c.Name, port, false) {
				return nil, &UnreachableError{Core: c.Name, Port: port, MuxDenied: true}
			}
			width := portWidth(c, port)
			po, err := PickPin(g, ch.POs, width)
			if err != nil {
				return nil, fmt.Errorf("sched: test mux for %s.%s: %w", c.Name, port, err)
			}
			g.AddTestMux(source, po)
			res.MuxArea.Add(cell.Mux2, width)
			cs.Muxes = append(cs.Muxes, Mux{From: source, To: po, Port: port, Input: false, Width: width})
			obs.C("sched.test_muxes_added").Inc()
			added = true
			p = bestPathToPO(fi, g, source, pos, oresv)
			if p == nil {
				return nil, &UnreachableError{Core: c.Name, Port: port}
			}
		}
		g.ReservePath(p, oresv)
		cs.Outputs = append(cs.Outputs, PortSchedule{Port: port, Path: p, Arrival: p.Arrival, AddedMux: added})
		if p.Arrival > cs.ObserveLat {
			cs.ObserveLat = p.Arrival
		}
	}

	depth := 0
	if c.Scan != nil {
		depth = c.Scan.MaxDepth
		cs.HSCANVectors = c.Scan.VectorsFor(c.Vectors)
	} else {
		cs.HSCANVectors = c.Vectors
	}
	tailScan := depth - 1
	if tailScan < 0 {
		tailScan = 0
	}
	cs.Tail = cs.ObserveLat + tailScan
	cs.TAT = cs.HSCANVectors*cs.Period + cs.Tail
	return cs, nil
}

// bestPathToPO finds the earliest-arriving PO with ONE multi-target
// Dijkstra instead of one full search per primary output; ties break by
// PO list order, matching the strict-< scan the per-PO loop used.
func bestPathToPO(fi *ccg.Finder, g *ccg.Graph, source int, pos []int, resv ccg.Reservations) *ccg.PathResult {
	var best *ccg.PathResult
	for _, p := range fi.ShortestPathMulti(g, []int{source}, pos, resv) {
		if p != nil && (best == nil || p.Arrival < best.Arrival) {
			best = p
		}
	}
	return best
}

// PickPin selects the chip pin a created test mux attaches to: the
// narrowest pin at least width bits wide (so the full port is covered
// with the least wiring), falling back to the widest pin available; ties
// break by name for determinism. An empty pin list or a pin missing from
// the CCG is a loud error — the scheduler must never guess a node. This
// is the same policy forced muxes use (core.Flow), fixing the old
// bestPI/bestPO helpers that ignored port width and silently fell back
// to node 0 on pinless chips.
func PickPin(g *ccg.Graph, pins []soc.Pin, width int) (int, error) {
	if len(pins) == 0 {
		return 0, fmt.Errorf("chip has no pins to attach a test mux to")
	}
	best := -1
	better := func(i int) bool {
		if best < 0 {
			return true
		}
		bw, iw := pins[best].Width, pins[i].Width
		bOK, iOK := bw >= width, iw >= width
		if bOK != iOK {
			return iOK // prefer pins wide enough for the port
		}
		if bw != iw {
			if bOK {
				return iw < bw // both cover: narrowest wins
			}
			return iw > bw // neither covers: widest wins
		}
		return pins[i].Name < pins[best].Name
	}
	for i := range pins {
		if better(i) {
			best = i
		}
	}
	idx, ok := g.NodeIndex(pins[best].Name)
	if !ok {
		return 0, fmt.Errorf("chip pin %s missing from the CCG", pins[best].Name)
	}
	return idx, nil
}

func inputPortNames(c *soc.Core) []string {
	var out []string
	for _, p := range c.RTL.Inputs() {
		out = append(out, p.Name)
	}
	sort.Strings(out)
	return out
}

func outputPortNames(c *soc.Core) []string {
	var out []string
	for _, p := range c.RTL.Outputs() {
		out = append(out, p.Name)
	}
	sort.Strings(out)
	return out
}

func portWidth(c *soc.Core, port string) int {
	if p, ok := c.RTL.PortByName(port); ok {
		return p.Width
	}
	return 1
}
