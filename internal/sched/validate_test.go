package sched

import (
	"strings"
	"testing"

	"repro/internal/ccg"
)

// Helpers building tiny hand-crafted schedules so each Validate failure
// branch can be triggered in isolation.

func steps(specs ...[3]int) []ccg.Step {
	var out []ccg.Step
	for _, s := range specs {
		out = append(out, ccg.Step{
			Edge:  &ccg.Edge{Latency: s[2]},
			Start: s[0],
			End:   s[1],
		})
	}
	return out
}

func pathOf(ss []ccg.Step) *ccg.PathResult {
	arr := 0
	if n := len(ss); n > 0 {
		arr = ss[n-1].End
	}
	return &ccg.PathResult{Steps: ss, Arrival: arr}
}

// okResult returns a minimal single-core schedule that passes Validate;
// tests then corrupt one aspect at a time.
func okResult() *Result {
	in := pathOf(steps([3]int{0, 2, 2}, [3]int{2, 5, 3}))
	out := pathOf(steps([3]int{0, 1, 1}))
	return &Result{Cores: []*CoreSchedule{{
		Core:         "C",
		Inputs:       []PortSchedule{{Port: "A", Path: in, Arrival: 5}},
		Outputs:      []PortSchedule{{Port: "Z", Path: out, Arrival: 1}},
		Period:       5,
		Tail:         1,
		HSCANVectors: 3,
		TAT:          3*5 + 1,
	}}}
}

func wantErr(t *testing.T, res *Result, frag string) {
	t.Helper()
	err := Validate(res)
	if err == nil {
		t.Fatalf("Validate accepted a corrupt schedule (want error containing %q)", frag)
	}
	if !strings.Contains(err.Error(), frag) {
		t.Fatalf("Validate error = %q, want it to mention %q", err, frag)
	}
}

func TestValidateAcceptsConsistentSchedule(t *testing.T) {
	if err := Validate(okResult()); err != nil {
		t.Fatalf("baseline schedule rejected: %v", err)
	}
}

func TestValidateNilPath(t *testing.T) {
	res := okResult()
	res.Cores[0].Inputs[0].Path = nil
	wantErr(t, res, "has no path")

	res = okResult()
	res.Cores[0].Outputs[0].Path = nil
	wantErr(t, res, "has no path")
}

func TestValidateTruncatedPath(t *testing.T) {
	// Dropping the final step leaves the reported arrival past the path end.
	res := okResult()
	p := res.Cores[0].Inputs[0].Path
	p.Steps = p.Steps[:1]
	wantErr(t, res, "reports arrival 5 but the path ends at 2")
}

func TestValidateStepBeforeDataArrives(t *testing.T) {
	// Second step starts at 1 although the first delivers at 2.
	res := okResult()
	ss := res.Cores[0].Inputs[0].Path.Steps
	ss[1].Start, ss[1].End = 1, 4
	wantErr(t, res, "starts at 1 before data arrives at 2")
}

func TestValidateStepSpanMismatchesLatency(t *testing.T) {
	res := okResult()
	ss := res.Cores[0].Inputs[0].Path.Steps
	ss[1].End = ss[1].Start + 1 // edge latency is 3
	wantErr(t, res, "but edge latency is 3")
}

func TestValidateArrivalAfterPeriod(t *testing.T) {
	res := okResult()
	res.Cores[0].Period = 4 // input arrives at 5
	res.Cores[0].TAT = 3*4 + 1
	wantErr(t, res, "arrives at 5 after the period 4")
}

func TestValidateTATFormula(t *testing.T) {
	res := okResult()
	res.Cores[0].TAT++
	wantErr(t, res, "TAT 17 != 3*5+1")
}

func TestValidateOverlappingResourceUse(t *testing.T) {
	// Two input ports drive paths through the same transparency resource
	// with overlapping occupancy [0,3) and [2,5).
	rk := ccg.ResKey{Core: "T", Edge: 7}
	mk := func(start int) *ccg.PathResult {
		s := ccg.Step{Edge: &ccg.Edge{Latency: 3, Res: []ccg.ResKey{rk}}, Start: start, End: start + 3}
		return &ccg.PathResult{Steps: []ccg.Step{s}, Arrival: start + 3}
	}
	res := &Result{Cores: []*CoreSchedule{{
		Core: "C",
		Inputs: []PortSchedule{
			{Port: "A", Path: mk(0), Arrival: 3},
			{Port: "B", Path: mk(2), Arrival: 5},
		},
		Period:       5,
		HSCANVectors: 1,
		TAT:          5,
	}}}
	wantErr(t, res, "used by A [0,3) and B [2,5) simultaneously")

	// Back-to-back occupancy [0,3) then [3,6) is legal.
	res.Cores[0].Inputs[1] = PortSchedule{Port: "B", Path: mk(3), Arrival: 6}
	res.Cores[0].Period = 6
	res.Cores[0].TAT = 6
	if err := Validate(res); err != nil {
		t.Fatalf("back-to-back resource reuse rejected: %v", err)
	}
}

func TestValidateSeparatePhasesShareResources(t *testing.T) {
	// Justification and observation are distinct phases: the same resource
	// may be occupied at the same instants in both without conflict.
	rk := ccg.ResKey{Core: "T", Edge: 1}
	mk := func() *ccg.PathResult {
		s := ccg.Step{Edge: &ccg.Edge{Latency: 2, Res: []ccg.ResKey{rk}}, Start: 0, End: 2}
		return &ccg.PathResult{Steps: []ccg.Step{s}, Arrival: 2}
	}
	res := &Result{Cores: []*CoreSchedule{{
		Core:         "C",
		Inputs:       []PortSchedule{{Port: "A", Path: mk(), Arrival: 2}},
		Outputs:      []PortSchedule{{Port: "Z", Path: mk(), Arrival: 2}},
		Period:       2,
		HSCANVectors: 1,
		TAT:          2,
	}}}
	if err := Validate(res); err != nil {
		t.Fatalf("cross-phase resource sharing rejected: %v", err)
	}
}
