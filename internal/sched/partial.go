package sched

import (
	"errors"
	"fmt"

	"repro/internal/ccg"
	"repro/internal/cell"
	"repro/internal/obs"
	"repro/internal/soc"
)

// UnreachableError reports one core port the scheduler could not serve: no
// justification (Input) or propagation path exists, and either inserting a
// system-level test mux did not help or the insertion was denied because
// the design's DFT hardware is fixed (MuxDenied).
type UnreachableError struct {
	Core, Port string
	Input      bool
	MuxDenied  bool
}

func (e *UnreachableError) Error() string {
	verb := "unobservable"
	if e.Input {
		verb = "unreachable"
	}
	if e.MuxDenied {
		return fmt.Sprintf("sched: %s.%s %s and no test mux is provisioned", e.Core, e.Port, verb)
	}
	return fmt.Sprintf("sched: %s.%s %s even with a test mux", e.Core, e.Port, verb)
}

// PartialOptions tunes BuildPartial.
type PartialOptions struct {
	// AllowMux reports whether a missing path at the named core port may
	// be repaired by inserting a new system-level test mux. nil allows
	// every insertion (design-time semantics, identical to Schedule).
	// Degraded evaluation of a faulted chip pre-installs the muxes the
	// healthy design actually provisioned and denies every new one:
	// broken interconnect discovered on the test floor cannot be patched
	// with new silicon.
	AllowMux func(core, port string, input bool) bool
	// PreMuxArea seeds the result's mux area with the cost of test-mux
	// edges the caller installed into the graph before scheduling.
	PreMuxArea cell.Area
}

// PortFailure is one diagnosed scheduling failure.
type PortFailure struct {
	Core, Port string
	Input      bool   // justification (true) or observation (false) failure
	Reason     string // human-readable cause
}

// Degradation collects everything BuildPartial had to give up on.
type Degradation struct {
	Failures []PortFailure
	// Skipped lists the cores excluded from the schedule, in declaration
	// order. A core is skipped on its first unservable port.
	Skipped []string
}

// Degraded reports whether any core had to be skipped.
func (d *Degradation) Degraded() bool { return d != nil && len(d.Skipped) > 0 }

// FailureFor returns the recorded failure of the named core, if any.
func (d *Degradation) FailureFor(core string) (PortFailure, bool) {
	if d == nil {
		return PortFailure{}, false
	}
	for _, f := range d.Failures {
		if f.Core == core {
			return f, true
		}
	}
	return PortFailure{}, false
}

// BuildPartial is the degrading counterpart of Schedule: instead of
// aborting the whole chip on the first unservable port, it skips the
// affected core, rolls back any test muxes speculatively inserted for it,
// records a diagnosis, and schedules every remaining core. The returned
// Result covers exactly the testable subset and passes Validate; the
// Degradation names what was lost and why. With a healthy chip and a nil
// (or all-true) AllowMux it behaves bit-identically to Schedule.
func BuildPartial(ch *soc.Chip, g *ccg.Graph, opts *PartialOptions) (*Result, *Degradation, error) {
	root := obs.Start(nil, "sched/partial")
	defer root.End()
	var allow func(core, port string, input bool) bool
	res := &Result{}
	if opts != nil {
		allow = opts.AllowMux
		res.MuxArea = opts.PreMuxArea
	}
	deg := &Degradation{}
	fi := ccg.NewFinder()
	skip := func(c *soc.Core, pf PortFailure) {
		deg.Failures = append(deg.Failures, pf)
		deg.Skipped = append(deg.Skipped, c.Name)
		obs.C("sched.ports_unreachable").Inc()
		obs.C("sched.cores_skipped").Inc()
	}
	for _, c := range ch.TestableCores() {
		if c.Disabled != "" {
			skip(c, PortFailure{Core: c.Name, Reason: "core disabled: " + c.Disabled})
			continue
		}
		// Snapshot so a failing core leaves no trace: test muxes inserted
		// for its earlier ports are rolled back along with their area.
		edgeMark := g.EdgeCount()
		muxMark := res.MuxArea
		sp := obs.Start(root, "sched/"+c.Name)
		cs, err := scheduleCore(ch, g, fi, c, res, allow)
		sp.End()
		if err != nil {
			g.TruncateEdges(edgeMark)
			res.MuxArea = muxMark
			pf := PortFailure{Core: c.Name, Reason: err.Error()}
			var ue *UnreachableError
			if errors.As(err, &ue) {
				pf.Port = ue.Port
				pf.Input = ue.Input
			}
			skip(c, pf)
			continue
		}
		res.Cores = append(res.Cores, cs)
		res.TotalTAT += cs.TAT
		obs.C("sched.cores_scheduled").Inc()
	}
	return res, deg, nil
}
