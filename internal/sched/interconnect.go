package sched

import (
	"fmt"

	"repro/internal/ccg"
	"repro/internal/soc"
)

// NetTest is the test plan for one inter-core wire. The paper's key
// advantage over the test-bus architecture (Section 1) is that SOCET's
// test data flows over the functional interconnect itself; this schedule
// makes that explicit by routing dedicated wire patterns (all-zero,
// all-one, and a walking one — the standard stuck/bridge set) through
// each net.
type NetTest struct {
	Net      soc.Net
	Width    int
	Patterns int // ceil(log2 w) + 2 walking/constant patterns
	Period   int // cycles to push one pattern from a PI through to a PO
	TAT      int
}

// InterconnectResult is the chip-wide interconnect test plan.
type InterconnectResult struct {
	Nets     []NetTest
	TotalTAT int
	// Untestable lists nets with no PI -> net -> PO path even through
	// transparency (their cores face BIST-tested memories, e.g.); they
	// are covered implicitly by the memory BIST interface test instead.
	Untestable []soc.Net
}

// wirePatterns is the minimal stuck+bridge pattern count for a w-bit bus.
func wirePatterns(w int) int {
	n := 2 // all-zero, all-one
	for v := w - 1; v > 0; v >>= 1 {
		n++
	}
	return n
}

// ScheduleInterconnect plans a test for every core-to-core net: the
// shortest reservation-free path from the chip PIs through the net to a
// PO determines the per-pattern period. Nets touching memory cores are
// skipped (their cores are absent from the CCG).
func ScheduleInterconnect(ch *soc.Chip, g *ccg.Graph) (*InterconnectResult, error) {
	return ScheduleInterconnectDelta(ch, g, nil, nil)
}

// ScheduleInterconnectDelta is ScheduleInterconnect with incremental
// reuse: nets for which affected reports false copy their base plan
// instead of re-running pathfinding. Both res.Nets and res.Untestable are
// produced in ch.Nets order, so the reuse walks base with two cursors.
// Every net is still classified exactly as a full run would — an
// unaffected net's routing cannot have changed, the over-approximating
// affected predicate is supplied by the caller (core.DeltaEvaluator).
// base == nil or affected == nil computes every net from scratch.
func ScheduleInterconnectDelta(ch *soc.Chip, g *ccg.Graph, base *InterconnectResult, affected func(n soc.Net) bool) (*InterconnectResult, error) {
	res := &InterconnectResult{}
	pis := g.PINodes()
	pos := g.PONodes()
	fi := ccg.NewFinder()
	baseNet, baseUn := 0, 0
	for _, n := range ch.Nets {
		if n.FromCore == "" || n.ToCore == "" {
			continue // chip-pin nets are tested by the pin itself
		}
		fromC, ok1 := ch.CoreByName(n.FromCore)
		toC, ok2 := ch.CoreByName(n.ToCore)
		if !ok1 || !ok2 || fromC.Memory || toC.Memory {
			continue
		}
		if base != nil && affected != nil && !affected(n) {
			// Copy the base classification of this net; the cursors stay
			// aligned because both runs consume ch.Nets in order.
			switch {
			case baseNet < len(base.Nets) && base.Nets[baseNet].Net == n:
				nt := base.Nets[baseNet]
				baseNet++
				res.Nets = append(res.Nets, nt)
				res.TotalTAT += nt.TAT
			case baseUn < len(base.Untestable) && base.Untestable[baseUn] == n:
				baseUn++
				res.Untestable = append(res.Untestable, n)
			default:
				return nil, fmt.Errorf("sched: interconnect delta: base plan misaligned at net %s.%s", n.FromCore, n.FromPort)
			}
			continue
		}
		// Advance cursors past this net in the base so later copies align.
		if base != nil {
			if baseNet < len(base.Nets) && base.Nets[baseNet].Net == n {
				baseNet++
			} else if baseUn < len(base.Untestable) && base.Untestable[baseUn] == n {
				baseUn++
			}
		}
		width := 1
		if p, ok := fromC.RTL.PortByName(n.FromPort); ok {
			width = p.Width
		}
		// Earliest arrival at the net's driver...
		src, ok := g.NodeIndex(n.FromCore + "." + n.FromPort)
		if !ok {
			return nil, fmt.Errorf("sched: interconnect: missing node %s.%s", n.FromCore, n.FromPort)
		}
		head := fi.ShortestPath(g, pis, src, ccg.Reservations{})
		// ...then across the wire and onward to any PO, all in one search.
		sink, ok := g.NodeIndex(n.ToCore + "." + n.ToPort)
		if !ok {
			return nil, fmt.Errorf("sched: interconnect: missing node %s.%s", n.ToCore, n.ToPort)
		}
		var tail *ccg.PathResult
		for _, p := range fi.ShortestPathMulti(g, []int{sink}, pos, ccg.Reservations{}) {
			if p != nil && (tail == nil || p.Arrival < tail.Arrival) {
				tail = p
			}
		}
		if head == nil || tail == nil {
			res.Untestable = append(res.Untestable, n)
			continue
		}
		nt := NetTest{
			Net:      n,
			Width:    width,
			Patterns: wirePatterns(width),
			Period:   head.Arrival + tail.Arrival,
		}
		if nt.Period < 1 {
			nt.Period = 1
		}
		nt.TAT = nt.Patterns * nt.Period
		res.Nets = append(res.Nets, nt)
		res.TotalTAT += nt.TAT
	}
	return res, nil
}
