package sched

import (
	"fmt"
	"sort"

	"repro/internal/ccg"
)

// Validate replays a schedule and checks its physical consistency:
//
//   - every path is causally ordered (data cannot enter an edge before it
//     has arrived at the edge's source);
//   - within one core's justification (and, separately, observation)
//     phase, no shared transparency resource is used by two overlapping
//     transfers — the no-pipelining rule of Section 3;
//   - each path's reported arrival matches its final step.
//
// It is the token-flow counterpart of the analytic TAT model: if Validate
// passes, the per-vector schedule can actually be executed by the test
// controller.
func Validate(res *Result) error {
	for _, cs := range res.Cores {
		if err := validatePhase(cs.Core, "justify", cs.Inputs); err != nil {
			return err
		}
		if err := validatePhase(cs.Core, "observe", cs.Outputs); err != nil {
			return err
		}
		// The period covers the slowest input delivery.
		for _, in := range cs.Inputs {
			if in.Arrival > cs.Period {
				return fmt.Errorf("sched: %s: input %s arrives at %d after the period %d",
					cs.Core, in.Port, in.Arrival, cs.Period)
			}
		}
		if cs.TAT != cs.HSCANVectors*cs.Period+cs.Tail {
			return fmt.Errorf("sched: %s: TAT %d != %d*%d+%d", cs.Core, cs.TAT, cs.HSCANVectors, cs.Period, cs.Tail)
		}
	}
	return nil
}

// PipelinedTAT recomputes each core's test time under the optimistic
// assumption the paper explicitly rejects ("we have assumed that test data
// cannot be pipelined through a core", Section 3): if a core's
// transparency stages could hold independent vectors, consecutive vectors
// would enter every bottleneck-edge-latency cycles instead of waiting for
// the full end-to-end delivery. The gap between this bound and the real
// schedule quantifies what the no-pipelining assumption costs.
func PipelinedTAT(res *Result) map[string]int {
	out := make(map[string]int, len(res.Cores))
	for _, cs := range res.Cores {
		period := 1
		for _, in := range cs.Inputs {
			if in.Path == nil {
				continue
			}
			for _, s := range in.Path.Steps {
				if s.Edge.Latency > period {
					period = s.Edge.Latency
				}
			}
		}
		out[cs.Core] = cs.HSCANVectors*period + cs.Tail
	}
	return out
}

type use struct {
	start, end int
	port       string
}

func validatePhase(core, phase string, ports []PortSchedule) error {
	resUses := map[ccg.ResKey][]use{}
	for _, ps := range ports {
		if ps.Path == nil {
			return fmt.Errorf("sched: %s: %s %s has no path", core, phase, ps.Port)
		}
		at := 0
		for i, step := range ps.Path.Steps {
			if step.Start < at {
				return fmt.Errorf("sched: %s: %s %s step %d starts at %d before data arrives at %d",
					core, phase, ps.Port, i, step.Start, at)
			}
			if step.End != step.Start+step.Edge.Latency {
				return fmt.Errorf("sched: %s: %s %s step %d spans [%d,%d) but edge latency is %d",
					core, phase, ps.Port, i, step.Start, step.End, step.Edge.Latency)
			}
			at = step.End
			for _, rk := range step.Edge.Res {
				resUses[rk] = append(resUses[rk], use{step.Start, step.End, ps.Port})
			}
		}
		if at != ps.Arrival {
			return fmt.Errorf("sched: %s: %s %s reports arrival %d but the path ends at %d",
				core, phase, ps.Port, ps.Arrival, at)
		}
	}
	for rk, uses := range resUses {
		sort.Slice(uses, func(i, j int) bool { return uses[i].start < uses[j].start })
		for i := 1; i < len(uses); i++ {
			if uses[i].start < uses[i-1].end {
				return fmt.Errorf("sched: %s: %s: resource %s/%d used by %s [%d,%d) and %s [%d,%d) simultaneously",
					core, phase, rk.Core, rk.Edge,
					uses[i-1].port, uses[i-1].start, uses[i-1].end,
					uses[i].port, uses[i].start, uses[i].end)
			}
		}
	}
	return nil
}
