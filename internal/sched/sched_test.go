package sched_test

import (
	"testing"

	"repro/internal/ccg"
	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/systems"
)

// section3Flow prepares System 1 with the paper's DISPLAY vector count
// (105) so the Section 3 arithmetic is directly comparable.
func section3Flow(t testing.TB) *core.Flow {
	t.Helper()
	f, err := core.Prepare(systems.System1(), &core.Options{
		VectorOverride: map[string]int{"CPU": 100, "PREPROCESSOR": 100, "DISPLAY": 105},
	})
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	return f
}

func scheduleOf(t testing.TB, f *core.Flow) (*sched.Result, *ccg.Graph) {
	t.Helper()
	g, err := ccg.Build(f.Chip)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sched.Schedule(f.Chip, g)
	if err != nil {
		t.Fatal(err)
	}
	return res, g
}

func TestScheduleAllCores(t *testing.T) {
	f := section3Flow(t)
	res, _ := scheduleOf(t, f)
	if len(res.Cores) != 3 {
		t.Fatalf("scheduled %d cores, want 3", len(res.Cores))
	}
	for _, cs := range res.Cores {
		if cs.TAT <= 0 {
			t.Errorf("%s: TAT = %d", cs.Core, cs.TAT)
		}
		if cs.Period < 1 {
			t.Errorf("%s: period = %d", cs.Core, cs.Period)
		}
		if cs.HSCANVectors <= 0 {
			t.Errorf("%s: no HSCAN vectors", cs.Core)
		}
	}
	if res.TotalTAT <= 0 {
		t.Error("zero total TAT")
	}
}

// The Section 3 model: TAT = HSCANvectors x period + tail. Verify the
// identity holds for every scheduled core.
func TestTATFormula(t *testing.T) {
	f := section3Flow(t)
	res, _ := scheduleOf(t, f)
	for _, cs := range res.Cores {
		want := cs.HSCANVectors*cs.Period + cs.Tail
		if cs.TAT != want {
			t.Errorf("%s: TAT = %d, want %d x %d + %d = %d", cs.Core, cs.TAT, cs.HSCANVectors, cs.Period, cs.Tail, want)
		}
	}
}

// Faster upstream core versions shrink the DISPLAY's justification period
// (the Section 3 narrative: CPU V1 -> V3 cuts 525x9+3 to 525x3+3).
func TestFasterVersionsShrinkDisplayPeriod(t *testing.T) {
	f := section3Flow(t)
	slow := map[string]int{"CPU": 0, "PREPROCESSOR": 0, "DISPLAY": 0}
	f.SelectVersions(slow)
	resSlow, _ := scheduleOf(t, f)
	fast := map[string]int{}
	for _, c := range f.Chip.TestableCores() {
		fast[c.Name] = len(c.Versions) - 1
	}
	fast["DISPLAY"] = 0 // only the helpers change
	f.SelectVersions(fast)
	resFast, _ := scheduleOf(t, f)
	ps, pf := 0, 0
	for _, cs := range resSlow.Cores {
		if cs.Core == "DISPLAY" {
			ps = cs.Period
		}
	}
	for _, cs := range resFast.Cores {
		if cs.Core == "DISPLAY" {
			pf = cs.Period
		}
	}
	if pf >= ps {
		t.Errorf("fast helper versions should shrink the DISPLAY period: %d -> %d", ps, pf)
	}
	f.SelectVersions(map[string]int{"CPU": 0, "PREPROCESSOR": 0, "DISPLAY": 0})
}

func TestSystemTestMuxesInserted(t *testing.T) {
	f := section3Flow(t)
	res, g := scheduleOf(t, f)
	if res.MuxArea.Cells() == 0 {
		t.Error("no system-level test muxes inserted (PREPROCESSOR.Address needs one)")
	}
	// The CCG now contains TestMux edges.
	found := false
	for _, e := range g.Edges {
		if e.Kind == ccg.TestMux {
			found = true
		}
	}
	if !found {
		t.Error("no TestMux edges in the CCG")
	}
	// Specifically the PREPROCESSOR Address output (Figure 9).
	for _, cs := range res.Cores {
		if cs.Core != "PREPROCESSOR" {
			continue
		}
		for _, out := range cs.Outputs {
			if out.Port == "Address" && !out.AddedMux {
				t.Error("PREPROCESSOR.Address should need a system-level test mux")
			}
		}
	}
}

func TestObservationTailIncludesScanOut(t *testing.T) {
	f := section3Flow(t)
	res, _ := scheduleOf(t, f)
	for _, cs := range res.Cores {
		if cs.Core != "DISPLAY" {
			continue
		}
		c, _ := f.Chip.CoreByName("DISPLAY")
		wantTail := cs.ObserveLat + c.Scan.MaxDepth - 1
		if cs.Tail != wantTail {
			t.Errorf("DISPLAY tail = %d, want observe %d + depth-1 %d", cs.Tail, cs.ObserveLat, c.Scan.MaxDepth-1)
		}
	}
}

func TestCoreTATLookup(t *testing.T) {
	f := section3Flow(t)
	res, _ := scheduleOf(t, f)
	if res.CoreTAT("DISPLAY") <= 0 {
		t.Error("CoreTAT(DISPLAY) not found")
	}
	if res.CoreTAT("NOPE") != -1 {
		t.Error("CoreTAT of unknown core should be -1")
	}
}

// Every schedule the scheduler produces must replay cleanly: causal step
// ordering, no overlapping use of shared transparency resources, and
// arrival bookkeeping — for both systems and several version selections.
func TestValidateSchedules(t *testing.T) {
	f := section3Flow(t)
	for _, sel := range []map[string]int{
		{"CPU": 0, "PREPROCESSOR": 0, "DISPLAY": 0},
		{"CPU": 1, "PREPROCESSOR": 0, "DISPLAY": 0},
		{"CPU": 2, "PREPROCESSOR": 2, "DISPLAY": 2},
	} {
		f.SelectVersions(sel)
		res, _ := scheduleOf(t, f)
		if err := sched.Validate(res); err != nil {
			t.Errorf("selection %v: %v", sel, err)
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	f := section3Flow(t)
	f.SelectVersions(map[string]int{"CPU": 0, "PREPROCESSOR": 0, "DISPLAY": 0})
	res, _ := scheduleOf(t, f)
	// Corrupt an arrival.
	for _, cs := range res.Cores {
		if len(cs.Inputs) > 0 && len(cs.Inputs[0].Path.Steps) > 0 {
			cs.Inputs[0].Arrival += 3
			break
		}
	}
	if err := sched.Validate(res); err == nil {
		t.Error("corrupted arrival not detected")
	}
}

func TestValidateCatchesResourceOverlap(t *testing.T) {
	f := section3Flow(t)
	f.SelectVersions(map[string]int{"CPU": 0, "PREPROCESSOR": 0, "DISPLAY": 0})
	res, _ := scheduleOf(t, f)
	// Shift a step back in time so it overlaps the previous use of its
	// resource (and breaks causality).
	for _, cs := range res.Cores {
		for i := range cs.Inputs {
			steps := cs.Inputs[i].Path.Steps
			for j := range steps {
				if steps[j].Start > 0 && len(steps[j].Edge.Res) > 0 {
					steps[j].Start = 0
					steps[j].End = steps[j].Edge.Latency
					if err := sched.Validate(res); err == nil {
						t.Error("time-shifted step not detected")
					}
					return
				}
			}
		}
	}
	t.Skip("no shiftable step found")
}

func TestInterconnectSchedule(t *testing.T) {
	f := section3Flow(t)
	f.SelectVersions(map[string]int{"CPU": 0, "PREPROCESSOR": 0, "DISPLAY": 0})
	g, err := ccg.Build(f.Chip)
	if err != nil {
		t.Fatal(err)
	}
	// Core tests add the system-level test muxes the interconnect plan
	// may also route through.
	if _, err := sched.Schedule(f.Chip, g); err != nil {
		t.Fatal(err)
	}
	ir, err := sched.ScheduleInterconnect(f.Chip, g)
	if err != nil {
		t.Fatal(err)
	}
	if len(ir.Nets) == 0 {
		t.Fatal("no inter-core nets scheduled")
	}
	seen := map[string]bool{}
	for _, nt := range ir.Nets {
		seen[nt.Net.String()] = true
		// ceil(log2 w)+2 patterns: an 8-bit bus needs 5.
		if nt.Width == 8 && nt.Patterns != 5 {
			t.Errorf("%v: %d patterns for 8 bits, want 5", nt.Net, nt.Patterns)
		}
		if nt.TAT != nt.Patterns*nt.Period {
			t.Errorf("%v: TAT %d != %d*%d", nt.Net, nt.TAT, nt.Patterns, nt.Period)
		}
		if nt.Period < 1 {
			t.Errorf("%v: period %d", nt.Net, nt.Period)
		}
	}
	// The data bus PREPROCESSOR.DB -> CPU.Data is a testable net.
	if !seen["PREPROCESSOR.DB -> CPU.Data"] {
		t.Errorf("data bus not scheduled; nets: %v", seen)
	}
	if ir.TotalTAT <= 0 {
		t.Error("zero interconnect TAT")
	}
	// Memory-facing nets are excluded, not failed.
	for _, nt := range ir.Nets {
		if nt.Net.ToCore == "RAM" || nt.Net.FromCore == "RAM" {
			t.Errorf("memory net scheduled: %v", nt.Net)
		}
	}
}

func TestPipelinedTATBound(t *testing.T) {
	f := section3Flow(t)
	f.SelectVersions(map[string]int{"CPU": 0, "PREPROCESSOR": 0, "DISPLAY": 0})
	res, _ := scheduleOf(t, f)
	pipe := sched.PipelinedTAT(res)
	for _, cs := range res.Cores {
		p, ok := pipe[cs.Core]
		if !ok {
			t.Fatalf("no pipelined bound for %s", cs.Core)
		}
		if p > cs.TAT {
			t.Errorf("%s: pipelined bound %d exceeds the conservative TAT %d", cs.Core, p, cs.TAT)
		}
		if p <= 0 {
			t.Errorf("%s: pipelined bound %d", cs.Core, p)
		}
	}
	// The DISPLAY's vectors cross two cores: pipelining would help it
	// strictly (its period exceeds any single edge latency).
	var disp *sched.CoreSchedule
	for _, cs := range res.Cores {
		if cs.Core == "DISPLAY" {
			disp = cs
		}
	}
	if disp != nil && pipe["DISPLAY"] >= disp.TAT {
		t.Errorf("pipelining should beat the conservative DISPLAY schedule: %d vs %d", pipe["DISPLAY"], disp.TAT)
	}
}
