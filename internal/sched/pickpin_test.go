package sched_test

// Regression tests for the mux pin picker. The old bestPI/bestPO ignored
// the port argument entirely and always grabbed the widest chip pin, so
// a narrow-port core's test mux could hog a wide bus pin while an exact
// fit sat unused — and a chip with no pins silently got node 0. PickPin
// must prefer the narrowest pin that still covers the port width, fall
// back to the widest when none covers, break width ties by name, and
// error loudly on a pinless chip.

import (
	"strings"
	"testing"

	"repro/internal/ccg"
	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/soc"
)

func graphOf(t *testing.T, f *core.Flow) *ccg.Graph {
	t.Helper()
	g, err := ccg.Build(f.Chip)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func mustNode(t *testing.T, g *ccg.Graph, name string) int {
	t.Helper()
	i, ok := g.NodeIndex(name)
	if !ok {
		t.Fatalf("no CCG node %s", name)
	}
	return i
}

func TestPickPinWidthCompatibility(t *testing.T) {
	f := section3Flow(t)
	g := graphOf(t, f)
	num := mustNode(t, g, "NUM")
	video := mustNode(t, g, "Video")
	reset := mustNode(t, g, "Reset")

	pins := []soc.Pin{{Name: "NUM", Width: 16}, {Name: "Video", Width: 8}, {Name: "Reset", Width: 1}}
	cases := []struct {
		width int
		want  int
		name  string
	}{
		{1, reset, "exact narrow fit beats wider pins"},
		{8, video, "narrowest covering pin, not the widest"},
		{12, num, "only the 16-bit pin covers a 12-bit port"},
		{32, num, "nothing covers: widest pin is the best effort"},
	}
	for _, c := range cases {
		got, err := sched.PickPin(g, pins, c.width)
		if err != nil {
			t.Fatalf("width %d: %v", c.width, err)
		}
		if got != c.want {
			t.Errorf("width %d: picked %s, want %s (%s)",
				c.width, g.Nodes[got].Name(), g.Nodes[c.want].Name(), c.name)
		}
	}
}

func TestPickPinTieBreaksByName(t *testing.T) {
	f := section3Flow(t)
	g := graphOf(t, f)
	pins := []soc.Pin{{Name: "Video", Width: 8}, {Name: "NUM", Width: 8}}
	got, err := sched.PickPin(g, pins, 4)
	if err != nil {
		t.Fatal(err)
	}
	if want := mustNode(t, g, "NUM"); got != want {
		t.Errorf("equal-width tie went to %s, want the lexicographically first pin NUM", g.Nodes[got].Name())
	}
}

func TestPickPinErrors(t *testing.T) {
	f := section3Flow(t)
	g := graphOf(t, f)
	if _, err := sched.PickPin(g, nil, 8); err == nil {
		t.Error("pinless chip: want a loud error, got the old silent node-0 fallback")
	}
	_, err := sched.PickPin(g, []soc.Pin{{Name: "NoSuchPin", Width: 8}}, 8)
	if err == nil || !strings.Contains(err.Error(), "NoSuchPin") {
		t.Errorf("pin missing from the CCG: want an error naming it, got %v", err)
	}
}
