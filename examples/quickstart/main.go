// Quickstart: make a small custom core testable and transparent.
//
// This example walks the core-level half of the SOCET method on a little
// filter core you define yourself: build the RTL, insert HSCAN scan
// chains, extract the register connectivity graph, generate the
// transparency version ladder, and verify — against a cycle-accurate RTL
// simulation — that the chosen transparency path really moves data.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/hscan"
	"repro/internal/rtl"
	"repro/internal/rtlsim"
	"repro/internal/trans"
)

func main() {
	log.SetFlags(0)
	// A four-stage moving-average filter: input samples shift through
	// TAP0..TAP2 while an accumulator adds them up.
	filter, err := rtl.NewCore("filter").
		In("Sample", 8).
		Out("Avg", 8).
		Reg("TAP0", 8).
		Reg("TAP1", 8).
		Reg("TAP2", 8).
		Reg("ACCUM", 8).
		Mux("MA", 8, 2).
		Unit(rtl.Unit{Name: "add", Op: rtl.OpAdd, Width: 8}).
		Wire("Sample", "TAP0.d").
		Wire("TAP0.q", "TAP1.d").
		Wire("TAP1.q", "TAP2.d").
		Wire("TAP2.q", "MA.in0").
		Wire("add.out", "MA.in1").
		Wire("MA.out", "ACCUM.d").
		Wire("ACCUM.q", "add.in0").
		Wire("TAP0.q", "add.in1").
		Wire("ACCUM.q", "Avg").
		Build()
	if err != nil {
		log.Fatalf("build filter core: %v", err)
	}

	// Step 1: HSCAN — thread the registers into scan chains reusing the
	// existing shift path (Section 2 of the paper).
	scan, err := hscan.Insert(filter)
	if err != nil {
		log.Fatal(err)
	}
	area := scan.Area
	fmt.Printf("HSCAN: %d chain(s), depth %d, %d cells of test logic\n",
		len(scan.Chains), scan.MaxDepth, area.Cells())
	for i, ch := range scan.Chains {
		fmt.Printf("  chain %d: %s\n", i+1, strings.Join(ch.Regs, " -> "))
	}

	// Step 2: transparency — find how test data can flow through the core
	// (Section 4), producing the version ladder.
	g, err := trans.Build(filter, scan)
	if err != nil {
		log.Fatal(err)
	}
	versions, err := trans.Versions(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntransparency versions:\n")
	for _, v := range versions {
		a := v.Area
		fmt.Printf("  %s: justify Avg in %d cycle(s), propagate Sample in %d, +%d cells\n",
			v.Label, v.JustLatency("Avg"), v.PropLatency("Sample"), a.Cells())
	}

	// Step 3: verify the base version's justification path against the
	// RTL simulator — a value driven at Sample must surface at Avg.
	v1 := versions[0]
	chain := rtlsim.LinearChain(v1.RCG, v1, "Avg")
	if chain == nil {
		fmt.Println("\njustification path is not a simple chain; verifying edges instead")
		verified, skipped, err := rtlsim.VerifyAllEdges(filter, v1.RCG, 42)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("verified %d RCG edges (%d created edges skipped)\n", verified, skipped)
		return
	}
	if err := rtlsim.VerifyChain(filter, v1.RCG, chain, 42); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nverified: a value at Sample reaches Avg in %d cycles through %d edges\n",
		v1.JustLatency("Avg"), len(chain))
}
