// Tradeoff: design-space exploration with the Section 5 objectives.
//
// This example enumerates every combination of core transparency versions
// on System 1 (the Figure 10 curve), then runs the paper's iterative
// improvement twice: once minimizing test time under an area budget
// (objective i) and once minimizing area under a test-time budget
// (objective ii).
//
// Run with:
//
//	go run ./examples/tradeoff
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/systems"
)

func main() {
	log.SetFlags(0)
	f, err := core.Prepare(systems.System1(), nil)
	if err != nil {
		log.Fatal(err)
	}

	points, err := explore.Enumerate(f)
	if err != nil {
		log.Fatal(err)
	}
	front := explore.Pareto(points)
	fmt.Printf("design space: %d points, Pareto front:\n", len(points))
	for _, p := range front {
		fmt.Printf("  %5d cells  %8d cycles   %s\n", p.ChipCells, p.TAT, p.Label())
	}
	minTAT := explore.MinTATPoint(points)
	fmt.Printf("\nmin-area point: %d cells / %d cycles\n", points[0].ChipCells, points[0].TAT)
	fmt.Printf("min-TAT point:  %d cells / %d cycles (%s)\n", minTAT.ChipCells, minTAT.TAT, minTAT.Label())
	fmt.Printf("trade-off span: %.1fx test-time reduction for %d extra cells\n",
		float64(points[0].TAT)/float64(minTAT.TAT), minTAT.ChipCells-points[0].ChipCells)

	// Objective (i): minimize TAT within a +40-cell area budget.
	reset(f)
	e0, err := f.Evaluate()
	if err != nil {
		log.Fatal(err)
	}
	budget := e0.ChipDFTCells() + 40
	res, err := explore.Improve(f, explore.MinimizeTAT, budget)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nobjective (i): min TAT within %d cells\n", budget)
	fmt.Printf("  start: %d cells / %d cycles\n", e0.ChipDFTCells(), e0.TAT)
	for _, s := range res.Steps {
		what := fmt.Sprintf("%s -> V%d", s.Core, s.Version+1)
		if s.MuxOn != "" {
			what = "test mux on " + s.MuxOn
		}
		fmt.Printf("  %-24s -> %d cells / %d cycles\n", what, s.ChipCells, s.TAT)
	}

	// Objective (ii): minimize area while meeting 60%% of the initial TAT.
	reset(f)
	target := e0.TAT * 6 / 10
	res2, err := explore.Improve(f, explore.MinimizeArea, target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nobjective (ii): min area with TAT <= %d cycles\n", target)
	for _, s := range res2.Steps {
		what := fmt.Sprintf("%s -> V%d", s.Core, s.Version+1)
		if s.MuxOn != "" {
			what = "test mux on " + s.MuxOn
		}
		fmt.Printf("  %-24s -> %d cells / %d cycles\n", what, s.ChipCells, s.TAT)
	}
	fmt.Printf("  final: %d cells / %d cycles\n", res2.Final.ChipDFTCells(), res2.Final.TAT)
}

func reset(f *core.Flow) {
	sel := map[string]int{}
	for _, c := range f.Chip.TestableCores() {
		sel[c.Name] = 0
	}
	f.SelectVersions(sel)
	f.ForcedMuxes = nil
}
