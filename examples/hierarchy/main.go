// Hierarchy: testing a system of systems.
//
// The paper notes its technique "is suitable for testing the SOC in a
// hierarchical fashion": a fully prepared SoC can itself act as a core in
// a larger system, with its pin-to-pin transparency standing in for its
// internals — no sequential test generation over the combined design is
// ever needed. This example flattens System 2 into a transparency-skeleton
// meta-core, embeds it beside a fresh GCD core, and runs the ordinary
// SOCET flow on the two-level system.
//
// Run with:
//
//	go run ./examples/hierarchy
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/hier"
	"repro/internal/systems"
)

func main() {
	log.SetFlags(0)
	// Level 1: prepare System 2 on its own.
	inner, err := core.Prepare(systems.System2(), nil)
	if err != nil {
		log.Fatal(err)
	}
	e1, err := inner.Evaluate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("level 1: %s tested in %d cycles with %d cells of chip DFT\n",
		inner.Chip.Name, e1.TAT, e1.ChipDFTCells())

	// Flatten it: the chip's pin-level test paths become a meta-core.
	meta, paths, err := hier.Flatten(inner, "SYS2CORE")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nflattened into %s (%d flip-flops standing in for the internals):\n",
		meta.Name, meta.FFCount())
	for _, p := range paths {
		fmt.Printf("  %s -> %s: %d cycles, %d bits\n", p.PI, p.PO, p.Latency, p.Width)
	}

	// Level 2: embed the meta-core next to a fresh GCD and test the
	// combined system with the same machinery.
	super := hier.Embed("supersoc", meta, systems.GCD())
	sf, err := core.Prepare(super, nil)
	if err != nil {
		log.Fatal(err)
	}
	e2, err := sf.Evaluate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlevel 2: %s (SYS2CORE + GCD) tested in %d cycles\n", super.Name, e2.TAT)
	for _, cs := range e2.Sched.Cores {
		fmt.Printf("  %-10s %5d HSCAN vectors x %2d-cycle period + %d tail = %6d cycles\n",
			cs.Core, cs.HSCANVectors, cs.Period, cs.Tail, cs.TAT)
	}
	fmt.Printf("\nthe GCD's vectors travel through the flattened System 2's transparency,\n")
	fmt.Printf("exactly as they would through any other core — hierarchy is free.\n")
}
