// Telecom: System 2 (graphics processor + GCD + X25 protocol core)
// against every baseline.
//
// This example runs the SOCET flow on the paper's second evaluation system
// and compares it with the FSCAN-BSCAN and test-bus alternatives discussed
// in Section 1: area overhead, test application time, and what each
// approach can or cannot test.
//
// Run with:
//
//	go run ./examples/telecom
package main

import (
	"fmt"
	"log"

	"repro/internal/bscan"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/systems"
	"repro/internal/testbus"
)

func main() {
	log.SetFlags(0)
	ch := systems.System2()
	f, err := core.Prepare(ch, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s cores:\n", ch.Name)
	for _, c := range ch.TestableCores() {
		art := f.Cores[c.Name]
		st := art.ATPG.Stats
		fmt.Printf("  %-10s %5d cells, %3d vectors, FC %.1f%%\n",
			c.Name, art.OrigCells(), c.Vectors, st.FaultCoverage())
	}

	points, err := explore.Enumerate(f)
	if err != nil {
		log.Fatal(err)
	}
	minArea := points[0]
	minTAT := explore.MinTATPoint(points)

	bs := bscan.Evaluate(ch)
	tb := testbus.Evaluate(ch)

	fmt.Printf("\n%-22s %14s %14s\n", "approach", "DFT cells", "test cycles")
	fmt.Printf("%-22s %14d %14d\n", "FSCAN-BSCAN", bs.ScanCells()+bs.BscanCells(), bs.TotalTAT)
	fmt.Printf("%-22s %14d %14d\n", "test bus", tb.MuxCells(), tb.TotalTAT)
	fmt.Printf("%-22s %14d %14d\n", "SOCET (min area)", minArea.ChipCells, minArea.TAT)
	fmt.Printf("%-22s %14d %14d\n", "SOCET (min TAT)", minTAT.ChipCells, minTAT.TAT)

	fmt.Printf("\nnotes:\n")
	fmt.Printf("  - the test bus reaches every core directly (minimum possible TAT,\n")
	fmt.Printf("    Section 5.2's degenerate case) but cannot test the inter-core wires\n")
	fmt.Printf("    and pays a mux on every port bit;\n")
	fmt.Printf("  - SOCET's test data flows through the GRAPHICS -> GCD -> X25 pipeline\n")
	fmt.Printf("    itself, so the interconnect is exercised by every core test.\n")

	// Show the scheduled paths for the deepest core (X25 sits two cores
	// from the chip inputs).
	f.SelectVersions(minTAT.Selection)
	e, err := f.Evaluate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nX25 test schedule at the min-TAT point:\n")
	for _, cs := range e.Sched.Cores {
		if cs.Core != "X25" {
			continue
		}
		fmt.Printf("  %d HSCAN vectors x %d-cycle period + %d tail = %d cycles\n",
			cs.HSCANVectors, cs.Period, cs.Tail, cs.TAT)
		for _, in := range cs.Inputs {
			fmt.Printf("    justify %-8s arrives at cycle %d\n", in.Port, in.Arrival)
		}
	}
}
