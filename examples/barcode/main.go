// Barcode: the paper's System 1, end to end.
//
// This example reproduces the Section 3 narrative on the barcode-scanner
// SoC of Figure 2: the embedded DISPLAY core is tested by justifying its
// precomputed vectors from the chip input NUM through the PREPROCESSOR's
// NUM->DB transparency and the CPU's Data->Address transparency, and it
// shows how swapping in faster CPU versions shrinks the test time, against
// the FSCAN-BSCAN baseline.
//
// Run with:
//
//	go run ./examples/barcode
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/systems"
)

func main() {
	log.SetFlags(0)
	ch := systems.System1()
	fmt.Printf("%s: %d cores (%d testable + RAM/ROM on BIST)\n",
		ch.Name, len(ch.Cores), len(ch.TestableCores()))

	// The paper's worked example fixes the DISPLAY test set at 105
	// combinational vectors; with chain depth d the scan expansion is
	// 105 x (d+1) HSCAN vectors.
	f, err := core.Prepare(ch, &core.Options{
		VectorOverride: map[string]int{"CPU": 100, "PREPROCESSOR": 100, "DISPLAY": 105},
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range ch.TestableCores() {
		fmt.Printf("  %-14s depth-%d chains, %d transparency versions\n",
			c.Name, c.Scan.MaxDepth, len(c.Versions))
	}

	ex, err := report.WorkedExample(f)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntesting the DISPLAY through PREPROCESSOR + CPU transparency:\n")
	fmt.Printf("  %-16s %9s %8s %6s %9s\n", "configuration", "vectors", "period", "tail", "TAT")
	for _, r := range ex.Rows {
		fmt.Printf("  %-16s %9d %8d %6d %9d cycles\n", r.Config, r.Vectors, r.Period, r.Tail, r.TAT)
	}
	fmt.Printf("  %-16s %35d cycles\n", "FSCAN-BSCAN", ex.FscanBscanTAT)
	best := ex.Rows[len(ex.Rows)-1]
	fmt.Printf("\nSOCET with the fastest CPU version tests the DISPLAY %.1fx faster than FSCAN-BSCAN\n",
		float64(ex.FscanBscanTAT)/float64(best.TAT))

	// Full-chip schedule at the minimum-area design point.
	e, err := f.Evaluate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfull-chip test (all cores, min-area versions): %d cycles, %d cells of chip DFT\n",
		e.TAT, e.ChipDFTCells())
	fmt.Printf("memory BIST (march C- on the 4KB space): %d cycles, concurrent\n", e.BISTCycles)
}
