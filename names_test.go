// The metric-name registry gate. obs.Metrics is create-on-first-use, so
// a typo'd counter name silently forks a metric instead of failing; these
// tests pin every name to the canonical list in internal/obs/names.go,
// from both directions:
//
//   - statically: every obs.C("...")/obs.G("...") literal in non-test
//     source must be registered, and every registered name must still
//     have a call site (no stale registry entries);
//   - dynamically: a full flow — prepare, enumerate, improve, fault
//     campaign, differential replay, obs endpoint — must leave only
//     registered names in the metrics snapshot.
package repro_test

import (
	"context"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/obs"
	"repro/internal/obs/obshttp"
	"repro/internal/obs/progress"
	"repro/internal/proptest"
	"repro/internal/resil"
	"repro/internal/shard"
	"repro/internal/systems"
)

var metricCall = regexp.MustCompile(`obs\.(C|G)\("([^"]+)"\)`)

// TestMetricNamesRegistered scans every non-test source file for metric
// call sites and checks them against the registry, both ways.
func TestMetricNamesRegistered(t *testing.T) {
	counters := map[string]bool{}
	gauges := map[string]bool{}
	for _, root := range []string{"internal", "cmd"} {
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			src, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			for _, m := range metricCall.FindAllStringSubmatch(string(src), -1) {
				kind, name := m[1], m[2]
				if !obs.Known(name) {
					t.Errorf("%s: obs.%s(%q) is not in the registry (internal/obs/names.go)", path, kind, name)
				}
				if kind == "C" {
					counters[name] = true
				} else {
					gauges[name] = true
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range obs.KnownCounters {
		if !counters[n] {
			t.Errorf("registered counter %q has no obs.C call site left — remove it from internal/obs/names.go", n)
		}
	}
	for _, n := range obs.KnownGauges {
		if !gauges[n] {
			t.Errorf("registered gauge %q has no obs.G call site left — remove it from internal/obs/names.go", n)
		}
	}
}

// TestMetricSnapshotNamesRegistered runs the whole flow end to end with
// obs enabled and asserts the resulting snapshot contains only
// registered names — the dynamic complement of the static scan above.
func TestMetricSnapshotNamesRegistered(t *testing.T) {
	obs.Enable(0)
	t.Cleanup(obs.Disable)
	progress.Enable(-1)
	t.Cleanup(progress.Disable)

	ch := systems.System1()
	f, err := core.Prepare(ch, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := explore.Enumerate(f); err != nil {
		t.Fatal(err)
	}
	if _, err := explore.Improve(f, explore.MinimizeTAT, 10_000); err != nil {
		t.Fatal(err)
	}

	e, err := f.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := proptest.ReplayEvaluation(ch, e, f.CurrentSelection()); err != nil {
		t.Fatal(err)
	}

	faults, err := resil.ParseFaults(ch, "slow:CPU")
	if err != nil {
		t.Fatal(err)
	}
	camp := &resil.Campaign{Flow: f, Runs: [][]resil.Fault{faults}}
	if _, err := camp.Execute(context.Background()); err != nil {
		t.Fatal(err)
	}

	// A small sharded sweep with checkpointing, so the shard.* family
	// shows up in the snapshot.
	if _, err := shard.RunExplore(context.Background(), f, shard.Options{
		Shards: 2, Index: shard.All,
		Checkpoint: filepath.Join(t.TempDir(), "ck"),
		Every:      time.Millisecond, MaxPoints: 6,
	}); err != nil {
		t.Fatal(err)
	}

	srv, err := obshttp.Serve(context.Background(), "127.0.0.1:0", obshttp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	cs, gs := obs.M().TypedSnapshot()
	if len(cs) == 0 {
		t.Fatal("end-to-end flow recorded no counters")
	}
	for name := range cs {
		if !obs.Known(name) {
			t.Errorf("counter %q left by the flow is not in the registry", name)
		}
	}
	for name := range gs {
		if !obs.Known(name) {
			t.Errorf("gauge %q left by the flow is not in the registry", name)
		}
	}
	// Spot-check that the flow exercised each subsystem family the
	// registry documents, so the "only registered names" assertion is
	// checking a populated snapshot, not an empty one.
	for _, want := range []string{
		"atpg.vectors", "ccg.builds", "core.evaluations",
		"explore.points_evaluated", "explore.moves_proposed",
		"obshttp.requests", "proptest.paths_replayed",
		"resil.runs", "sched.cores_scheduled",
		"shard.checkpoints_written", "trans.versions_built",
	} {
		if cs[want] == 0 {
			t.Errorf("end-to-end flow never incremented %q", want)
		}
	}
}
