GO ?= go

.PHONY: build test bench bench-delta bench-snapshot bench-wrap check study trace

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Regenerate every table and figure of the paper next to its numbers.
bench:
	$(GO) test -bench=. -benchmem -v

# Delta vs full evaluation head-to-head on the generated-chip ladder
# (single-core-change candidates; see scripts/bench.sh -delta).
bench-delta:
	sh scripts/bench.sh -delta

# Capture the next BENCH_<n>.json perf-trajectory snapshot and diff it
# against the previous one (fails on regressions; see scripts/bench.sh).
bench-snapshot:
	sh scripts/bench.sh

# Wrapped-core/TAM evaluator scaling ladder (8-128 generated cores);
# the series feeds the BENCH_<n>.json snapshots via scripts/bench.sh.
bench-wrap:
	$(GO) test -run '^$$' -bench 'BenchmarkWrappedChip' -benchmem .

# The SOCET vs wrapper vs test-bus corpus study from EXPERIMENTS.md
# (deterministic; regenerates the committed table byte-for-byte).
study:
	$(GO) run ./cmd/compare -study

# Formatting + vet + full suite under the race detector (CI entry point).
check:
	sh scripts/check.sh

# Example observability capture: full System 1 flow with span trace,
# metrics snapshot, and per-phase timing summary.
trace:
	$(GO) run ./cmd/socet -system 1 -trace socet.ndjson -metrics socet.json -v
