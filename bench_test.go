// Benchmarks regenerating every table and figure of the paper's
// evaluation (Section 6), plus ablations of the design choices called out
// in DESIGN.md and micro-benchmarks of the algorithmic substrates. Run
//
//	go test -bench=. -benchmem
//
// and add -v to see the regenerated rows next to the paper's numbers.
package repro_test

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/atpg"
	"repro/internal/ccg"
	"repro/internal/chipsim"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/fsim"
	"repro/internal/gate"
	"repro/internal/hier"
	"repro/internal/hscan"
	"repro/internal/report"
	"repro/internal/resil"
	"repro/internal/rtl"
	"repro/internal/sched"
	"repro/internal/soc"
	"repro/internal/socgen"
	"repro/internal/synth"
	"repro/internal/systems"
	"repro/internal/trans"
	"repro/internal/wrap"
)

// fixtures are shared across benchmarks: the prepared flows (full ATPG)
// and enumerated design spaces for both systems.
var (
	fixOnce sync.Once
	fix     struct {
		f1, f2 *core.Flow
		p1, p2 []explore.Point
		err    error
	}
)

func flows(b *testing.B) (*core.Flow, []explore.Point, *core.Flow, []explore.Point) {
	b.Helper()
	fixOnce.Do(func() {
		f1, err := core.Prepare(systems.System1(), nil)
		if err != nil {
			fix.err = err
			return
		}
		p1, err := explore.Enumerate(f1)
		if err != nil {
			fix.err = err
			return
		}
		f2, err := core.Prepare(systems.System2(), nil)
		if err != nil {
			fix.err = err
			return
		}
		p2, err := explore.Enumerate(f2)
		if err != nil {
			fix.err = err
			return
		}
		fix.f1, fix.p1, fix.f2, fix.p2 = f1, p1, f2, p2
	})
	if fix.err != nil {
		b.Fatal(fix.err)
	}
	resetSelection(fix.f1)
	resetSelection(fix.f2)
	return fix.f1, fix.p1, fix.f2, fix.p2
}

func resetSelection(f *core.Flow) {
	sel := map[string]int{}
	for _, c := range f.Chip.TestableCores() {
		sel[c.Name] = 0
	}
	f.SelectVersions(sel)
	f.ForcedMuxes = nil
}

// versionLadder runs core-level DFT and transparency on one core.
func versionLadder(b *testing.B, build func() *rtl.Core) []*trans.Version {
	b.Helper()
	c := build()
	scan, err := hscan.Insert(c)
	if err != nil {
		b.Fatal(err)
	}
	g, err := trans.Build(c, scan)
	if err != nil {
		b.Fatal(err)
	}
	vs, err := trans.Versions(g)
	if err != nil {
		b.Fatal(err)
	}
	return vs
}

// --- E1: Figure 6 — CPU transparency version ladder ---------------------

func BenchmarkFig6CPUVersions(b *testing.B) {
	var vs []*trans.Version
	for i := 0; i < b.N; i++ {
		vs = versionLadder(b, systems.CPU)
	}
	v1, last := vs[0], vs[len(vs)-1]
	b.ReportMetric(float64(v1.JustLatency("AddrLo")), "v1-D-to-A7:0-cycles")
	b.ReportMetric(float64(v1.JustLatency("AddrHi")), "v1-D-to-A11:8-cycles")
	b.ReportMetric(float64(last.JustLatency("AddrLo")), "vLast-D-to-A7:0-cycles")
	b.Logf("Figure 6 (paper: V1 6/2 -> V3 1/1 at 3 -> 30 cells):")
	for _, v := range vs {
		a := v.Area
		b.Logf("  %s: D->A(7:0)=%d  D->A(11:8)=%d  overhead=%d cells",
			v.Label, v.JustLatency("AddrLo"), v.JustLatency("AddrHi"), a.Cells())
	}
}

// --- E2: Figure 8 — PREPROCESSOR and DISPLAY ladders ---------------------

func BenchmarkFig8PreprocessorVersions(b *testing.B) {
	var vs []*trans.Version
	for i := 0; i < b.N; i++ {
		vs = versionLadder(b, systems.Preprocessor)
	}
	b.ReportMetric(float64(vs[0].JustLatency("DB")), "v1-NUM-to-DB-cycles")
	b.ReportMetric(float64(vs[len(vs)-1].JustLatency("DB")), "vLast-NUM-to-DB-cycles")
	b.Logf("Figure 8(a) (paper: NUM->DB 5 -> 1 -> 1 at 2 -> 37 cells):")
	for _, v := range vs {
		a := v.Area
		b.Logf("  %s: NUM->DB=%d  NUM->Address=%d  overhead=%d cells",
			v.Label, v.JustLatency("DB"), v.JustLatency("Address"), a.Cells())
	}
}

func BenchmarkFig8DisplayVersions(b *testing.B) {
	var vs []*trans.Version
	for i := 0; i < b.N; i++ {
		vs = versionLadder(b, systems.Display)
	}
	b.ReportMetric(float64(vs[0].PropLatency("D")), "v1-D-to-OUT-cycles")
	b.ReportMetric(float64(vs[0].PropLatency("ALo")), "v1-A-to-OUT-cycles")
	b.Logf("Figure 8(b) (paper: D->OUT 2, A->OUT 3 in V1; both 1 by V3):")
	for _, v := range vs {
		a := v.Area
		b.Logf("  %s: D->OUT=%d  A(7:0)->OUT=%d  overhead=%d cells",
			v.Label, v.PropLatency("D"), v.PropLatency("ALo"), a.Cells())
	}
}

// --- E3: Section 3 worked example — DISPLAY TAT per CPU version ----------

func BenchmarkSec3DisplayTAT(b *testing.B) {
	f, err := core.Prepare(systems.System1(), &core.Options{
		VectorOverride: map[string]int{"CPU": 100, "PREPROCESSOR": 100, "DISPLAY": 105},
	})
	if err != nil {
		b.Fatal(err)
	}
	var ex *report.Section3
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex, err = report.WorkedExample(f)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(ex.Rows[0].TAT), "cpuV1-TAT-cycles")
	b.ReportMetric(float64(ex.Rows[len(ex.Rows)-1].TAT), "cpuVLast-TAT-cycles")
	b.ReportMetric(float64(ex.FscanBscanTAT), "fscan-bscan-TAT-cycles")
	b.Logf("Section 3 worked example (paper: 4728 / 2103 / 1578 vs 9115):")
	for _, r := range ex.Rows {
		b.Logf("  %-16s %d x %d + %d = %d cycles", r.Config, r.Vectors, r.Period, r.Tail, r.TAT)
	}
	b.Logf("  FSCAN-BSCAN baseline: %d cycles", ex.FscanBscanTAT)
}

// --- E4: Figure 10 — TAT vs area trade-off curve -------------------------

func BenchmarkFig10Tradeoff(b *testing.B) {
	f1, _, _, _ := flows(b)
	var points []explore.Point
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		points, err = explore.Enumerate(f1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	minTAT := explore.MinTATPoint(points)
	b.ReportMetric(float64(len(points)), "design-points")
	b.ReportMetric(float64(points[0].TAT), "min-area-TAT-cycles")
	b.ReportMetric(float64(minTAT.TAT), "min-TAT-cycles")
	b.ReportMetric(float64(points[0].TAT)/float64(minTAT.TAT), "TAT-reduction-x")
	b.Logf("Figure 10 (paper: 18 points, ~4.5x TAT reduction):\n%s",
		report.FormatFigure10(report.Figure10(explore.Pareto(points))))
}

// BenchmarkEnumerateSerialVsParallel reports the wall-clock ratio between
// the single-worker and GOMAXPROCS-wide enumeration of the System 1
// version ladder in one run; the parallel pool produces bit-identical
// points (asserted here too).
func BenchmarkEnumerateSerialVsParallel(b *testing.B) {
	f1, _, _, _ := flows(b)
	var serialNS, parallelNS int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		serial, err := explore.EnumerateOpts(f1, explore.Options{Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		t1 := time.Now()
		parallel, err := explore.EnumerateOpts(f1, explore.Options{Workers: 0})
		if err != nil {
			b.Fatal(err)
		}
		t2 := time.Now()
		serialNS += t1.Sub(t0).Nanoseconds()
		parallelNS += t2.Sub(t1).Nanoseconds()
		if len(serial) != len(parallel) {
			b.Fatalf("parallel enumerated %d points, serial %d", len(parallel), len(serial))
		}
		for j := range serial {
			if serial[j].Label() != parallel[j].Label() || serial[j].TAT != parallel[j].TAT ||
				serial[j].ChipCells != parallel[j].ChipCells {
				b.Fatalf("point %d diverged between serial and parallel enumeration", j)
			}
		}
	}
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "workers")
	if parallelNS > 0 {
		b.ReportMetric(float64(serialNS)/float64(parallelNS), "serial-over-parallel-x")
	}
}

// --- E5: Table 1 — design space exploration rows -------------------------

func BenchmarkTable1DesignSpace(b *testing.B) {
	f1, p1, _, _ := flows(b)
	var rows []report.Table1Row
	for i := 0; i < b.N; i++ {
		rows = report.Table1(f1, p1)
	}
	b.ReportMetric(rows[0].FCov, "fault-coverage-pct")
	b.ReportMetric(rows[0].TestEff, "test-efficiency-pct")
	b.Logf("Table 1 (paper: 156/17387, 325/3818, 307/3806 at FC 98.4, TEff 99.8):")
	for _, r := range rows {
		b.Logf("  %-60s A.Ov=%d TApp=%d FC=%.1f%% TEff=%.1f%%", r.Desc, r.AreaOv, r.TATime, r.FCov, r.TestEff)
	}
}

// --- E6: Table 2 — area overheads, both systems --------------------------

func benchTable2(b *testing.B, f *core.Flow, points []explore.Point, paper string) {
	var t2 *report.Table2
	var err error
	for i := 0; i < b.N; i++ {
		t2, err = report.MakeTable2(f, points)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(t2.FscanBscanTotalPct, "fscan-bscan-total-pct")
	b.ReportMetric(t2.SocetMinAreaTotalPct, "socet-min-area-total-pct")
	b.Logf("Table 2 %s (paper: %s):", t2.System, paper)
	b.Logf("  FSCAN %.1f%%  HSCAN %.1f%%  BSCAN %.1f%%  SOCET chip %.1f%%/%.1f%%  totals %.1f%% vs %.1f%%/%.1f%%",
		t2.FscanPct, t2.HscanPct, t2.BscanPct, t2.SocetMinAreaPct, t2.SocetMinTATPct,
		t2.FscanBscanTotalPct, t2.SocetMinAreaTotalPct, t2.SocetMinTATTotalPct)
}

func BenchmarkTable2AreaOverheadsS1(b *testing.B) {
	f1, p1, _, _ := flows(b)
	benchTable2(b, f1, p1, "FSCAN 18.8, HSCAN 10.1, BSCAN 5.2, SOCET 2.0/3.8, totals 24.0 vs 12.1/13.9")
}

func BenchmarkTable2AreaOverheadsS2(b *testing.B) {
	_, _, f2, p2 := flows(b)
	benchTable2(b, f2, p2, "FSCAN 15.6, HSCAN 10.3, BSCAN 9.9, SOCET 1.2/4.7, totals 25.5 vs 11.5/15.0")
}

// --- E7: Table 3 — testability, both systems ------------------------------

func benchTable3(b *testing.B, f *core.Flow, points []explore.Point, paper string) {
	var t3 *report.Table3
	var err error
	for i := 0; i < b.N; i++ {
		t3, err = report.MakeTable3(f, points, &report.Table3Options{Cycles: 192, FaultSample: 1200})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(t3.OrigFC, "orig-FC-pct")
	b.ReportMetric(t3.SocetFC, "socet-FC-pct")
	b.ReportMetric(float64(t3.FscanBscanTAT), "fscan-bscan-TAT-cycles")
	b.ReportMetric(float64(t3.SocetMinTAT), "socet-min-TAT-cycles")
	b.Logf("Table 3 %s (paper: %s):", t3.System, paper)
	b.Logf("  orig FC %.1f%%, HSCAN-only FC %.1f%%, FSCAN-BSCAN FC %.1f%% @ %d cyc, SOCET FC %.1f%% @ %d/%d cyc",
		t3.OrigFC, t3.HscanFC, t3.FscanBscanFC, t3.FscanBscanTAT, t3.SocetFC, t3.SocetMinArea, t3.SocetMinTAT)
}

func BenchmarkTable3TestabilityS1(b *testing.B) {
	f1, p1, _, _ := flows(b)
	benchTable3(b, f1, p1, "orig 10.6, HSCAN 14.6, FSCAN-BSCAN 98.4 @ 36152, SOCET 98.4 @ 17387/3806")
}

func BenchmarkTable3TestabilityS2(b *testing.B) {
	_, _, f2, p2 := flows(b)
	benchTable3(b, f2, p2, "orig 11.2, HSCAN 13.8, FSCAN-BSCAN 98.2 @ 46394, SOCET 98.2 @ 16435/3998")
}

// --- Ablations ------------------------------------------------------------

// AblationHSCANOnlyTransparency compares Version 1's HSCAN-edge-first
// search against the all-edges minimum-latency search (the V1/V2 mechanism
// of Section 4): all-edge search must never be slower.
func BenchmarkAblationHSCANOnlyTransparency(b *testing.B) {
	c := systems.CPU()
	scan, err := hscan.Insert(c)
	if err != nil {
		b.Fatal(err)
	}
	g, err := trans.Build(c, scan)
	if err != nil {
		b.Fatal(err)
	}
	var strictSum, looseSum int
	for i := 0; i < b.N; i++ {
		strictSum, looseSum = 0, 0
		for _, out := range g.OutputNodes() {
			if p, ok := g.SolveJust(out, true); ok {
				strictSum += p.Latency
			}
			if p, ok := g.SolveJust(out, false); ok {
				looseSum += p.Latency
			}
		}
	}
	b.ReportMetric(float64(strictSum), "hscan-only-latency-sum")
	b.ReportMetric(float64(looseSum), "all-edges-latency-sum")
	if looseSum > strictSum {
		b.Fatalf("all-edge search slower than HSCAN-only: %d > %d", looseSum, strictSum)
	}
}

// AblationReservations compares the reservation-aware Dijkstra against a
// naive one that ignores edge sharing: naive arrival times underestimate
// the DISPLAY's justification period (Section 5.1's point).
func BenchmarkAblationReservations(b *testing.B) {
	f1, _, _, _ := flows(b)
	g, err := ccg.Build(f1.Chip)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	targets := []string{"DISPLAY.ALo", "DISPLAY.AHi", "DISPLAY.D"}
	var reserved, naive int
	for i := 0; i < b.N; i++ {
		resv := ccg.Reservations{}
		reserved, naive = 0, 0
		for _, name := range targets {
			t, _ := g.NodeIndex(name)
			p := g.ShortestPath(g.PINodes(), t, resv)
			if p == nil {
				b.Fatalf("no path to %s", name)
			}
			g.ReservePath(p, resv)
			if p.Arrival > reserved {
				reserved = p.Arrival
			}
			pn := g.ShortestPath(g.PINodes(), t, ccg.Reservations{})
			if pn.Arrival > naive {
				naive = pn.Arrival
			}
		}
	}
	b.ReportMetric(float64(reserved), "reserved-period-cycles")
	b.ReportMetric(float64(naive), "naive-period-cycles")
	if naive > reserved {
		b.Fatal("naive schedule cannot be slower than the reserved one")
	}
}

// AblationCompaction measures reverse-order compaction's vector reduction.
func BenchmarkAblationCompaction(b *testing.B) {
	c := systems.GCD()
	sr, err := synth.Synthesize(c)
	if err != nil {
		b.Fatal(err)
	}
	raw, err := atpg.Generate(sr.Netlist, &atpg.Options{Compact: false})
	if err != nil {
		b.Fatal(err)
	}
	var compacted []gate.Pattern
	faults := sr.Netlist.Faults()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		compacted = atpg.Compact(sr.Netlist, raw.Patterns, faults)
	}
	b.ReportMetric(float64(len(raw.Patterns)), "raw-vectors")
	b.ReportMetric(float64(len(compacted)), "compacted-vectors")
}

// --- Micro-benchmarks of the substrates -----------------------------------

func BenchmarkSynthesizeCPU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := synth.Synthesize(systems.CPU()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkATPGGCD(b *testing.B) {
	sr, err := synth.Synthesize(systems.GCD())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := atpg.Generate(sr.Netlist, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFaultSimCPU(b *testing.B) {
	sr, err := synth.Synthesize(systems.CPU())
	if err != nil {
		b.Fatal(err)
	}
	res, err := atpg.Generate(sr.Netlist, nil)
	if err != nil {
		b.Fatal(err)
	}
	faults := sr.Netlist.Faults()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fsim.Combinational(sr.Netlist, res.Patterns, faults); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(faults)), "faults")
	b.ReportMetric(float64(len(res.Patterns)), "vectors")
}

func BenchmarkSequentialSimChip(b *testing.B) {
	f1, _, _, _ := flows(b)
	cn, err := core.BuildChipNetlist(f1, false)
	if err != nil {
		b.Fatal(err)
	}
	faults := report.SampleFaults(cn.Netlist.Faults(), 256, 7)
	stim := fsim.RandomStimulus(cn.Netlist, 64, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fsim.Sequential(cn.Netlist, stim, faults); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHSCANInsertCPU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := hscan.Insert(systems.CPU()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCCGShortestPath(b *testing.B) {
	f1, _, _, _ := flows(b)
	g, err := ccg.Build(f1.Chip)
	if err != nil {
		b.Fatal(err)
	}
	target, _ := g.NodeIndex("DISPLAY.ALo")
	pis := g.PINodes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if p := g.ShortestPath(pis, target, ccg.Reservations{}); p == nil {
			b.Fatal("no path")
		}
	}
}

func BenchmarkEvaluateSystem1(b *testing.B) {
	f1, _, _, _ := flows(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f1.Evaluate(); err != nil {
			b.Fatal(err)
		}
	}
}

// AblationPipelining quantifies the paper's no-pipelining assumption
// (Section 3): how much faster the chip test would be if vectors could
// stream through transparency stages back-to-back.
func BenchmarkAblationPipelining(b *testing.B) {
	f1, _, _, _ := flows(b)
	e, err := f1.Evaluate()
	if err != nil {
		b.Fatal(err)
	}
	var pipe map[string]int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pipe = sched.PipelinedTAT(e.Sched)
	}
	total := 0
	for _, v := range pipe {
		total += v
	}
	b.ReportMetric(float64(e.Sched.TotalTAT), "conservative-TAT-cycles")
	b.ReportMetric(float64(total), "pipelined-bound-cycles")
}

// --- Extensions beyond the paper's tables ---------------------------------

// Interconnect test plan: the paper's claimed advantage over the test bus
// (Section 1), made explicit — every inter-core wire gets walking/constant
// patterns routed through the transparency fabric.
func BenchmarkInterconnectPlan(b *testing.B) {
	f1, _, _, _ := flows(b)
	e, err := f1.Evaluate()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var ir *sched.InterconnectResult
	for i := 0; i < b.N; i++ {
		g, err := ccg.Build(f1.Chip)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sched.Schedule(f1.Chip, g); err != nil {
			b.Fatal(err)
		}
		ir, err = sched.ScheduleInterconnect(f1.Chip, g)
		if err != nil {
			b.Fatal(err)
		}
	}
	_ = e
	b.ReportMetric(float64(len(ir.Nets)), "nets-tested")
	b.ReportMetric(float64(ir.TotalTAT), "interconnect-TAT-cycles")
}

// Hierarchical flow (Section 1's "hierarchical fashion" claim): flatten
// System 2 and run the chip-level flow on the two-level system.
func BenchmarkHierarchicalFlow(b *testing.B) {
	_, _, f2, _ := flows(b)
	b.ResetTimer()
	var tat int
	for i := 0; i < b.N; i++ {
		meta, _, err := hier.Flatten(f2, "SYS2CORE")
		if err != nil {
			b.Fatal(err)
		}
		super := hier.Embed("supersoc", meta, systems.GCD())
		sf, err := core.Prepare(super, &core.Options{
			VectorOverride: map[string]int{meta.Name: 40, "GCD": 25},
		})
		if err != nil {
			b.Fatal(err)
		}
		e, err := sf.Evaluate()
		if err != nil {
			b.Fatal(err)
		}
		tat = e.TAT
	}
	b.ReportMetric(float64(tat), "two-level-TAT-cycles")
}

// End-to-end mechanism execution: one vector physically delivered from
// chip input NUM through PREPROCESSOR and CPU transparency to the
// DISPLAY, on the RTL chip simulator.
func BenchmarkVectorDelivery(b *testing.B) {
	f, err := core.Prepare(systems.System1(), &core.Options{
		VectorOverride: map[string]int{"CPU": 10, "PREPROCESSOR": 10, "DISPLAY": 10},
	})
	if err != nil {
		b.Fatal(err)
	}
	prep, _ := f.Chip.CoreByName("PREPROCESSOR")
	cpu, _ := f.Chip.CoreByName("CPU")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := chipsim.New(f.Chip)
		if err != nil {
			b.Fatal(err)
		}
		ps, _ := s.Core("PREPROCESSOR")
		cs, _ := s.Core("CPU")
		l1, err := chipsim.EngageJustification(ps, prep.Versions[0], "DB")
		if err != nil {
			b.Fatal(err)
		}
		l2, err := chipsim.EngageJustification(cs, cpu.Versions[1], "AddrLo")
		if err != nil {
			b.Fatal(err)
		}
		s.SetPI("NUM", 0x3C)
		for c := 0; c < l1+l2; c++ {
			if err := s.Step(); err != nil {
				b.Fatal(err)
			}
		}
		got, err := s.CoreInput("DISPLAY", "ALo")
		if err != nil || got != 0x3C {
			b.Fatalf("delivery failed: %#x, %v", got, err)
		}
	}
}

// --- Scaling: seeded generated SoCs, 8 to 64 cores -----------------------

// generatedFlow prepares the seeded socgen chip the BENCH_<n>.json
// ladder tracks (generation and ATPG-skipping preparation stay outside
// every timer).
func generatedFlow(b *testing.B, n int) *core.Flow {
	b.Helper()
	ch, err := socgen.Generate(socgen.Params{Seed: 1998, Cores: n, Topology: socgen.RandomDAG})
	if err != nil {
		b.Fatal(err)
	}
	vecs := map[string]int{}
	for i, c := range ch.TestableCores() {
		vecs[c.Name] = 10 + i%23
	}
	f, err := core.Prepare(ch, &core.Options{VectorOverride: vecs})
	if err != nil {
		b.Fatal(err)
	}
	return f
}

// BenchmarkGeneratedChip measures the explorer's hot loop on socgen
// chips of growing core count: evaluating a candidate that differs from
// an already-evaluated base in ONE core's version. The delta evaluator
// is rebased once outside the timer with adoption off, so every timed
// iteration is a pure incremental evaluation of a different single-core
// flip. BenchmarkGeneratedChipFull times the same candidates through the
// full from-scratch path; the ratio between the two is the speedup the
// BENCH_<n>.json series tracks per PR.
func BenchmarkGeneratedChip(b *testing.B) {
	for _, n := range []int{8, 16, 32, 64, 128, 256} {
		b.Run(fmt.Sprintf("cores=%d", n), func(b *testing.B) {
			f := generatedFlow(b, n)
			d := core.NewDeltaEvaluator(f)
			d.AdoptCandidates = false
			base := f.CurrentSelection()
			if _, err := d.Rebase(context.Background(), base); err != nil {
				b.Fatal(err)
			}
			flippable := flippableCores(f)
			var e *core.Evaluation
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var err error
				e, err = d.EvaluateSelection(flipOne(base, flippable, i))
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if st := d.Stats(); st.Deltas == 0 {
				b.Fatalf("no iteration took the delta path: %+v", st)
			}
			b.ReportMetric(float64(e.TAT), "TAT-cycles")
			b.ReportMetric(float64(len(f.Chip.Nets)), "nets")
		})
	}
}

// BenchmarkGeneratedChipFull evaluates the same single-core-flip
// candidates as BenchmarkGeneratedChip through the full from-scratch
// path — the delta benchmark's baseline.
func BenchmarkGeneratedChipFull(b *testing.B) {
	for _, n := range []int{8, 16, 32, 64, 128, 256} {
		b.Run(fmt.Sprintf("cores=%d", n), func(b *testing.B) {
			f := generatedFlow(b, n)
			base := f.CurrentSelection()
			flippable := flippableCores(f)
			var e *core.Evaluation
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var err error
				e, err = f.EvaluateSelection(flipOne(base, flippable, i))
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(e.TAT), "TAT-cycles")
			b.ReportMetric(float64(len(f.Chip.Nets)), "nets")
		})
	}
}

// BenchmarkWrappedChip measures the wrapped-core/TAM baseline end to end
// on the same socgen ladder: per-core chain balancing (exact partition
// up to the exact-search cutoff, LPT above it) plus the chip-level TAM
// schedule at width 16. Chip preparation stays outside the timer, so
// the series isolates the wrap evaluator that the -study corpus runs at
// scale.
func BenchmarkWrappedChip(b *testing.B) {
	for _, n := range []int{8, 32, 128} {
		b.Run(fmt.Sprintf("cores=%d", n), func(b *testing.B) {
			f := generatedFlow(b, n)
			var r *wrap.Result
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r = f.EvaluateWrapper(16, nil)
			}
			b.StopTimer()
			b.ReportMetric(float64(r.ChipTAT), "TAT-cycles")
			b.ReportMetric(float64(r.DFTCells()), "DFT-cells")
		})
	}
}

// flippableCores lists the cores a single-version flip can change.
func flippableCores(f *core.Flow) []*soc.Core {
	var out []*soc.Core
	for _, c := range f.Chip.TestableCores() {
		if len(c.Versions) >= 2 {
			out = append(out, c)
		}
	}
	if len(out) == 0 {
		panic("generated chip has no multi-version cores")
	}
	return out
}

// flipOne returns base with iteration i's core moved to a different
// version, cycling through cores first and version offsets second.
func flipOne(base map[string]int, cores []*soc.Core, i int) map[string]int {
	c := cores[i%len(cores)]
	nv := len(c.Versions)
	v := (base[c.Name] + 1 + (i/len(cores))%(nv-1)) % nv
	if v == base[c.Name] {
		v = (v + 1) % nv
	}
	sel := make(map[string]int, len(base))
	for k, vv := range base {
		sel[k] = vv
	}
	sel[c.Name] = v
	return sel
}

// --- Robustness: degradation campaign under random interconnect cuts ----

// BenchmarkDegradationCampaign injects k random CCG-edge cuts into
// system1 (k = 1..3, eight seeded draws each) and evaluates the degraded
// flow: the campaign must finish with zero flow errors, and the mean
// vector-weighted coverage of the testable subset traces the degradation
// curve reported in EXPERIMENTS.md.
func BenchmarkDegradationCampaign(b *testing.B) {
	f1, _, _, _ := flows(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, k := range []int{1, 2, 3} {
			c := resil.Campaign{Flow: f1, Runs: resil.RandomSets(f1.Chip, 8, k, 1998)}
			outs, err := c.Execute(context.Background())
			if err != nil {
				b.Fatal(err)
			}
			sum, degraded := 0.0, 0
			for _, o := range outs {
				if o.Err != nil {
					b.Fatalf("run %d (%s): %v", o.Index, resil.FaultSetString(o.Faults), o.Err)
				}
				sum += o.Eval.Report.Coverage
				if o.Eval.Report.Degraded() {
					degraded++
				}
			}
			mean := sum / float64(len(outs))
			b.ReportMetric(mean, "mean-coverage-k"+string(rune('0'+k)))
			b.Logf("k=%d cuts: %d/%d runs degraded, mean coverage %.3f", k, degraded, len(outs), mean)
		}
	}
}
