// Command verify runs the repository's verification battery on a system:
// every physical RCG edge of every core is replayed on the RTL
// interpreter, every chain-shaped justification path is driven end to
// end, the chip schedule is replay-validated against the reservation
// discipline, and (for System 1) a live test vector is delivered through
// the PREPROCESSOR and CPU transparency into the DISPLAY on the chip
// simulator.
//
// Usage:
//
//	verify [-system 1|2] [-timeout 30s]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/chipsim"
	"repro/internal/core"
	"repro/internal/flowcmd"
	"repro/internal/obs/obscli"
	"repro/internal/rtlsim"
	"repro/internal/sched"
	"repro/internal/trans"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("verify: ")
	system := flag.Int("system", 1, "example system (1 or 2)")
	timeout := flowcmd.AddTimeout(flag.CommandLine)
	obsCfg := obscli.AddFlags(flag.CommandLine)
	flag.Parse()
	ctx, cancel := flowcmd.Context(*timeout)
	defer cancel()
	sess, err := obsCfg.Start()
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	ch, err := flowcmd.System(*system)
	if err != nil {
		log.Fatal(err)
	}
	vec := map[string]int{}
	for _, c := range ch.Cores {
		vec[c.Name] = 25
	}
	f, err := core.Prepare(ch, &core.Options{VectorOverride: vec})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("verifying %s\n\n", ch.Name)
	totalEdges, totalSkipped, totalChains := 0, 0, 0
	for _, c := range ch.TestableCores() {
		g, err := trans.Build(c.RTL, c.Scan)
		if err != nil {
			log.Fatal(err)
		}
		verified, skipped, err := rtlsim.VerifyAllEdges(c.RTL, g, 0xfeed)
		if err != nil {
			log.Fatalf("%s: RCG edge verification FAILED: %v", c.Name, err)
		}
		totalEdges += verified
		totalSkipped += skipped
		chains := 0
		for _, v := range c.Versions {
			for _, p := range c.RTL.Outputs() {
				chain := rtlsim.LinearChain(v.RCG, v, p.Name)
				if chain == nil {
					continue
				}
				if err := rtlsim.VerifyChain(c.RTL, v.RCG, chain, 0xfeed); err != nil {
					log.Fatalf("%s: chain verification FAILED: %v", c.Name, err)
				}
				chains++
			}
		}
		totalChains += chains
		fmt.Printf("  %-14s %3d edges replayed on the RTL, %d virtual (scan/transparency muxes), %d chains driven end-to-end\n",
			c.Name, verified, skipped, chains)
	}

	e, err := f.EvaluateCtx(ctx)
	if err != nil {
		log.Fatal(err)
	}
	if err := sched.Validate(e.Sched); err != nil {
		log.Fatalf("schedule replay FAILED: %v", err)
	}
	fmt.Printf("\n  schedule replay: %d core tests, causality and resource reservations hold\n", len(e.Sched.Cores))

	if *system == 1 {
		if err := deliver(f); err != nil {
			log.Fatalf("live vector delivery FAILED: %v", err)
		}
		fmt.Printf("  live delivery: 0x5C driven at NUM arrived at DISPLAY.ALo through 2 cores (6 cycles)\n")
	}
	fmt.Printf("\nall checks passed: %d edges, %d chains, schedule, delivery\n",
		totalEdges, totalChains)
}

// deliver executes the Section 3 mechanism on the RTL chip simulator.
func deliver(f *core.Flow) error {
	s, err := chipsim.New(f.Chip)
	if err != nil {
		return err
	}
	prep, _ := f.Chip.CoreByName("PREPROCESSOR")
	cpu, _ := f.Chip.CoreByName("CPU")
	ps, _ := s.Core("PREPROCESSOR")
	cs, _ := s.Core("CPU")
	l1, err := chipsim.EngageJustification(ps, prep.Versions[0], "DB")
	if err != nil {
		return err
	}
	l2, err := chipsim.EngageJustification(cs, cpu.Versions[1], "AddrLo")
	if err != nil {
		return err
	}
	const vector = 0x5C
	s.SetPI("NUM", vector)
	for c := 0; c < l1+l2; c++ {
		if err := s.Step(); err != nil {
			return err
		}
	}
	got, err := s.CoreInput("DISPLAY", "ALo")
	if err != nil {
		return err
	}
	if got != vector {
		return fmt.Errorf("DISPLAY.ALo = %#x, want %#x", got, vector)
	}
	return nil
}
