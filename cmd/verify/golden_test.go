package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files with the current output")

// TestGoldenOutput locks the verification battery's complete output for
// both example systems: replayed edge counts, chain drives, schedule
// replay and the live delivery line. Any diff is a behavior change to
// review (and bless with -update).
func TestGoldenOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full flow (synthesis + ATPG) twice")
	}
	for _, sys := range []int{1, 2} {
		t.Run(fmt.Sprintf("system%d", sys), func(t *testing.T) {
			out, err := exec.Command("go", "run", ".", "-system", fmt.Sprint(sys)).CombinedOutput()
			if err != nil {
				t.Fatalf("verify -system %d: %v\n%s", sys, err, out)
			}
			golden := filepath.Join("testdata", fmt.Sprintf("system%d.golden", sys))
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, out, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run with -update to create it)", err)
			}
			if string(out) != string(want) {
				t.Errorf("output differs from %s (re-bless with -update if intended)\n--- got ---\n%s\n--- want ---\n%s",
					golden, out, want)
			}
		})
	}
}
