// Command benchsnap maintains the repo's perf trajectory: it parses
// `go test -bench` output into a structured BENCH_<n>.json snapshot,
// validates a snapshot's schema, and diffs two snapshots against a
// regression threshold. scripts/bench.sh drives it; see the README's
// "Benchmark trajectory" section.
//
// Usage:
//
//	go test -bench=. | benchsnap -parse -rev $(git rev-parse --short HEAD) \
//	    -date 2026-08-07 -out BENCH_1.json
//	benchsnap -check BENCH_1.json
//	benchsnap -diff BENCH_0.json,BENCH_1.json -threshold 0.25
//
// The capture date and revision are flags, never read from the clock or
// the repo, so the same raw input always produces the same snapshot.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"repro/internal/obs/benchjson"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchsnap: ")
	parse := flag.Bool("parse", false, "parse `go test -bench` output from stdin (or -in) into a snapshot")
	in := flag.String("in", "", "input `file` for -parse (default stdin)")
	out := flag.String("out", "", "output `file` for -parse (default stdout)")
	rev := flag.String("rev", "", "git revision recorded in the snapshot (required with -parse)")
	date := flag.String("date", "", "capture date recorded in the snapshot (required with -parse)")
	check := flag.String("check", "", "validate the snapshot `file`'s schema and exit")
	diff := flag.String("diff", "", "compare two snapshots, `old.json,new.json`; exits 1 on regression")
	threshold := flag.Float64("threshold", 0.25, "allowed fractional ns/op slowdown for -diff (0.25 = 25%)")
	floor := flag.Float64("floor", 0, "noise floor in `ns/op`: baselines faster than this are skipped by -diff, not compared")
	flag.Parse()

	modes := 0
	for _, on := range []bool{*parse, *check != "", *diff != ""} {
		if on {
			modes++
		}
	}
	if modes != 1 {
		log.Fatal("exactly one of -parse, -check, -diff is required")
	}
	switch {
	case *parse:
		if err := runParse(*in, *out, *rev, *date); err != nil {
			log.Fatal(err)
		}
	case *check != "":
		snap, err := load(*check)
		if err != nil {
			log.Fatal(err)
		}
		if err := snap.Validate(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: schema %d, %d benchmarks, rev %s, date %s\n",
			*check, snap.Schema, len(snap.Results), snap.Rev, snap.Date)
	case *diff != "":
		parts := strings.Split(*diff, ",")
		if len(parts) != 2 {
			log.Fatal("-diff wants old.json,new.json")
		}
		if err := runDiff(parts[0], parts[1], *threshold, *floor); err != nil {
			log.Fatal(err)
		}
	}
}

func runParse(in, out, rev, date string) error {
	if rev == "" || date == "" {
		return fmt.Errorf("-parse requires -rev and -date (snapshots are clock-free by design)")
	}
	var src io.Reader = os.Stdin
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}
	snap, err := benchjson.Parse(src)
	if err != nil {
		return err
	}
	snap.Rev, snap.Date = rev, date
	if err := snap.Validate(); err != nil {
		return fmt.Errorf("parsed output is not a valid snapshot: %w", err)
	}
	dst := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		dst = f
	}
	return snap.Encode(dst)
}

func runDiff(oldPath, newPath string, threshold, floor float64) error {
	oldSnap, err := load(oldPath)
	if err != nil {
		return err
	}
	newSnap, err := load(newPath)
	if err != nil {
		return err
	}
	rep, err := benchjson.DiffFloor(oldSnap, newSnap, threshold, floor)
	if err != nil {
		return err
	}
	fmt.Print(rep.Format(threshold))
	if len(rep.Regressions) > 0 {
		return fmt.Errorf("%d benchmark regressions above the %.0f%% threshold", len(rep.Regressions), threshold*100)
	}
	return nil
}

func load(path string) (*benchjson.Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return benchjson.Decode(f)
}
