// Command socet runs the full SOCET flow on one of the paper's example
// systems: core-level DFT (HSCAN + transparency versions + ATPG), chip
// level CCG construction and test scheduling, and prints the resulting
// area/test-time bottom line for the selected objective.
//
// Usage:
//
//	socet [-system 1|2] [-objective area|tat|none] [-budget N] [-v]
//	      [-timeout 30s]
//	      [-fault "cut:FROM->TO,opaque:CORE,slow:CORE:K,noscan:CORE"]
//	      [-trace out.ndjson] [-metrics out.json]
//	      [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// With -v, a per-phase wall-time summary of the whole flow is printed
// from the recorded spans (tracing is switched on automatically).
//
// With -fault, the listed faults are injected into a copy of the chip and
// the flow evaluates the damaged copy gracefully: the bottom line covers
// the still-testable subset and a degradation report names what was lost
// and why (see internal/resil).
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/flowcmd"
	"repro/internal/obs"
	"repro/internal/obs/obscli"
	"repro/internal/resil"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("socet: ")
	system := flag.Int("system", 1, "example system to run (1 = barcode, 2 = graphics/GCD/X25)")
	objective := flag.String("objective", "none", "selection objective: tat (min TAT under area budget), area (min area under TAT budget), none (min-area versions)")
	budget := flag.Int("budget", 0, "budget for the objective (cells for -objective tat, cycles for -objective area)")
	verbose := flag.Bool("v", false, "print per-core details and a per-phase timing summary")
	fault := flag.String("fault", "", "inject faults (comma-separated: cut:FROM->TO, opaque:CORE, slow:CORE[:K], noscan:CORE) and evaluate gracefully")
	timeout := flowcmd.AddTimeout(flag.CommandLine)
	obsCfg := obscli.AddFlags(flag.CommandLine)
	flag.Parse()
	ctx, cancel := flowcmd.Context(*timeout)
	defer cancel()

	sess, serr := obsCfg.Start()
	if serr != nil {
		log.Fatal(serr)
	}
	defer sess.Close()
	if *verbose && !obs.Enabled() {
		// -v wants the timing summary even without -trace/-metrics.
		obs.Enable(obsCfg.TraceCap)
	}

	ch, err := flowcmd.System(*system)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SOCET flow on %s\n", ch.Name)
	f, err := core.Prepare(ch, nil)
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range ch.TestableCores() {
		art := f.Cores[c.Name]
		st := art.ATPG.Stats
		fmt.Printf("  %-14s %5d cells, %2d scan chains (depth %d), %d versions, %3d vectors, FC %.1f%%, TEff %.1f%%\n",
			c.Name, art.OrigCells(), len(c.Scan.Chains), c.Scan.MaxDepth, len(c.Versions), c.Vectors,
			st.FaultCoverage(), st.TestEfficiency())
	}

	switch *objective {
	case "tat":
		b := *budget
		if b == 0 {
			b = 1 << 30
		}
		res, err := explore.ImproveCtx(ctx, f, explore.MinimizeTAT, b, explore.Options{})
		if err != nil {
			log.Fatal(err)
		}
		printSteps(res)
	case "area":
		if *budget == 0 {
			log.Fatal("-objective area needs -budget cycles")
		}
		res, err := explore.ImproveCtx(ctx, f, explore.MinimizeArea, *budget, explore.Options{})
		if err != nil {
			log.Fatal(err)
		}
		printSteps(res)
	case "none":
	default:
		log.Fatalf("unknown objective %q", *objective)
	}

	var e *core.Evaluation
	var report *core.DegradationReport
	if *fault != "" {
		faults, err := resil.ParseFaults(f.Chip, *fault)
		if err != nil {
			log.Fatal(err)
		}
		damaged, err := resil.Inject(f.Chip, faults...)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\ninjected faults: %s\n", resil.FaultSetString(faults))
		dev, err := f.Fork(damaged).EvaluateDegradedCtx(ctx)
		if err != nil {
			log.Fatal(err)
		}
		e, report = dev.Evaluation, dev.Report
	} else {
		e, err = f.EvaluateCtx(ctx)
		if err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("\nchip-level result:\n")
	fmt.Printf("  transparency logic: %5d cells\n", e.TransCells)
	fmt.Printf("  system test muxes:  %5d cells\n", e.MuxCells)
	fmt.Printf("  test controller:    %5d cells (%d states)\n", e.CtrlCells, e.Controller.States)
	fmt.Printf("  chip DFT total:     %5d cells (%.1f%% of %d original)\n",
		e.ChipDFTCells(), core.Percent(e.ChipDFTCells(), f.OrigCells()), f.OrigCells())
	fmt.Printf("  test application:   %5d cycles (logic cores)\n", e.TAT)
	if e.BISTCycles > 0 {
		fmt.Printf("  memory BIST:        %5d cycles (concurrent)\n", e.BISTCycles)
	}
	if report != nil {
		fmt.Printf("\n%s", report.Format())
	}
	if cands := explore.Candidates(f, e, explore.Cost{W1: 1}); report == nil && len(cands) > 0 {
		best := cands[0]
		fmt.Printf("  explorer:           %d candidate version upgrades (best: %s -> V%d, est. dTAT %d, dA %d)\n",
			len(cands), best.Core, best.Version+1, best.DeltaTAT, best.DeltaArea)
	}
	if *verbose {
		fmt.Printf("\nper-core schedule:\n")
		for _, cs := range e.Sched.Cores {
			fmt.Printf("  %-14s %d HSCAN vectors x %d-cycle period + %d tail = %d cycles\n",
				cs.Core, cs.HSCANVectors, cs.Period, cs.Tail, cs.TAT)
			for _, in := range cs.Inputs {
				mux := ""
				if in.AddedMux {
					mux = " (test mux)"
				}
				fmt.Printf("      justify %-10s arrival %2d%s\n", in.Port, in.Arrival, mux)
			}
			for _, out := range cs.Outputs {
				mux := ""
				if out.AddedMux {
					mux = " (test mux)"
				}
				fmt.Printf("      observe %-10s latency %2d%s\n", out.Port, out.Arrival, mux)
			}
		}
		if t := obs.T(); t != nil {
			fmt.Printf("\nper-phase timing:\n%s", obs.FormatSummary(obs.Summarize(t.Records())))
		}
	}
}

func printSteps(res *explore.Result) {
	fmt.Printf("\niterative improvement:\n")
	for i, s := range res.Steps {
		if s.MuxOn != "" {
			fmt.Printf("  step %d: test mux on %s -> TAT %d, chip DFT %d cells\n", i+1, s.MuxOn, s.TAT, s.ChipCells)
			continue
		}
		fmt.Printf("  step %d: %s -> Version %d (dTAT %d, dA %d) -> TAT %d, chip DFT %d cells\n",
			i+1, s.Core, s.Version+1, s.DeltaTAT, s.DeltaArea, s.TAT, s.ChipCells)
	}
	if len(res.Steps) == 0 {
		fmt.Printf("  (no moves: constraints already met)\n")
	}
}
