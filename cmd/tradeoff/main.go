// Command tradeoff regenerates Figure 10 (the test-application-time versus
// area-overhead curve over all core-version combinations) and Table 1 (the
// design-space exploration rows) for one of the example systems.
//
// Usage:
//
//	tradeoff [-system 1|2] [-pareto] [-timeout 30s]
//
// With -timeout, an enumeration that runs out of time prints the Pareto
// front of the points completed so far instead of failing.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/obs/obscli"
	"repro/internal/report"
	"repro/internal/soc"
	"repro/internal/systems"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tradeoff: ")
	system := flag.Int("system", 1, "example system (1 or 2)")
	pareto := flag.Bool("pareto", false, "print only the Pareto front")
	jobs := flag.Int("j", 0, "parallel evaluation workers (0 = GOMAXPROCS); output is identical at any count")
	timeout := flag.Duration("timeout", 0, "wall-clock bound on the enumeration (0 = none); on expiry the partial Pareto front is printed")
	obsCfg := obscli.AddFlags(flag.CommandLine)
	flag.Parse()
	sess, err := obsCfg.Start()
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	var ch *soc.Chip
	switch *system {
	case 1:
		ch = systems.System1()
	case 2:
		ch = systems.System2()
	default:
		log.Fatal("-system must be 1 or 2")
	}
	f, err := core.Prepare(ch, nil)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	points, err := explore.EnumerateCtx(ctx, f, explore.Options{Workers: *jobs})
	expired := errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)
	if err != nil && !expired {
		log.Fatal(err)
	}
	if expired {
		if len(points) == 0 {
			log.Fatalf("timeout %v expired before any design point completed", *timeout)
		}
		log.Printf("timeout %v expired: %d design points completed; printing the partial Pareto front", *timeout, len(points))
		fmt.Printf("Figure 10 (PARTIAL, timed out): test application time vs. chip-level DFT area (%s, %d design points)\n\n",
			ch.Name, len(points))
		points = explore.Pareto(points)
		fmt.Printf("(partial Pareto front: %d points)\n", len(points))
	} else {
		fmt.Printf("Figure 10: test application time vs. chip-level DFT area (%s, %d design points)\n\n",
			ch.Name, len(points))
		if *pareto {
			points = explore.Pareto(points)
			fmt.Printf("(Pareto front: %d points)\n", len(points))
		}
	}
	fmt.Print(report.FormatFigure10(report.Figure10(points)))
	if expired {
		return
	}

	fmt.Printf("\nTable 1: design space exploration for %s\n", ch.Name)
	fmt.Printf("%-58s %8s %9s %6s %6s\n", "Circuit description", "A.Ov.", "TApp.", "FCov.", "TEff.")
	for _, r := range report.Table1(f, points) {
		fmt.Printf("%-58s %8d %9d %5.1f%% %5.1f%%\n", r.Desc, r.AreaOv, r.TATime, r.FCov, r.TestEff)
	}
}
