// Command tradeoff regenerates Figure 10 (the test-application-time versus
// area-overhead curve over all core-version combinations) and Table 1 (the
// design-space exploration rows) for one of the example systems.
//
// Usage:
//
//	tradeoff [-system 1|2] [-pareto] [-timeout 30s]
//	tradeoff -gen -cores 64 -seed 7 [-topology dag] [-max-points 20000]
//	tradeoff -arch wrapper [-tam-widths 1,2,4,8,16]
//
// With -arch wrapper the command sweeps the wrapped-core/TAM baseline
// (internal/wrap) over the -tam-widths list instead of enumerating
// version selections: one row per TAM width W with the bus count, chip
// test time and DFT cell cost, exposing the same width-vs-time tradeoff
// curve Figure 10 shows for SOCET versions.
//
// With -timeout, an enumeration that runs out of time prints the Pareto
// front of the points completed so far instead of failing. With -gen the
// chip is a seeded random SoC (internal/socgen) instead of an example
// system; since the version ladder of a generated chip explodes
// combinatorially, -max-points caps the enumeration at a deterministic
// prefix of the design space. Live observability: -progress prints
// one-line status updates, -obs-listen serves /metrics, /progress (SSE)
// and /trace over HTTP while the enumeration runs.
//
// Long sweeps can be partitioned and made crash-safe (internal/shard):
//
//	tradeoff -gen -seed 7 -shards 8 -shard-index 3 -checkpoint /tmp/sweep -resume
//
// Each shard owns a deterministic slice of the selection space and
// checkpoints its completed ranges; re-running with -resume skips
// finished work, and -shard-index -1 runs (or, with complete
// checkpoints, merely merges) every shard in one process. The printed
// front is identical for any shard count.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/flowcmd"
	"repro/internal/obs/obscli"
	"repro/internal/report"
	"repro/internal/shard"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tradeoff: ")
	system := flag.Int("system", 1, "example system (1 or 2)")
	pareto := flag.Bool("pareto", false, "print only the Pareto front")
	jobs := flag.Int("j", 0, "parallel evaluation workers (0 = GOMAXPROCS); output is identical at any count")
	timeout := flag.Duration("timeout", 0, "wall-clock bound on the enumeration (0 = none); on expiry the partial Pareto front is printed")
	maxPoints := flag.Int("max-points", 0, "cap the enumeration at `n` design points (0 = all); the capped set is a deterministic prefix")
	gen := flag.Bool("gen", false, "explore a seeded random SoC (internal/socgen) instead of an example system")
	seed := flag.Uint64("seed", 1, "generator seed (with -gen)")
	cores := flag.Int("cores", 0, "generated logic core count, 0 = derived from the seed (with -gen)")
	topology := flag.String("topology", "auto", "generated interconnect family: auto, chain, mesh, dag, hub (with -gen)")
	delta := flag.Bool("delta", true, "evaluate single-core-change candidates incrementally; results are bit-identical, -delta=false forces full evaluations")
	arch := flag.String("arch", "socet", "architecture to sweep: socet (version enumeration) or wrapper (TAM width sweep)")
	tamWidths := flag.String("tam-widths", "1,2,4,8,16", "comma-separated TAM widths for -arch wrapper")
	obsCfg := obscli.AddFlags(flag.CommandLine)
	obsCfg.AddProgressFlag(flag.CommandLine)
	shardCfg := shard.AddFlags(flag.CommandLine)
	flag.Parse()
	sess, err := obsCfg.Start()
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	spec := flowcmd.ChipSpec{System: *system}
	if *gen {
		spec = flowcmd.ChipSpec{Gen: &flowcmd.GenSpec{Seed: *seed, Cores: *cores, Topology: *topology}}
	}
	ch, opts, err := spec.Build()
	if err != nil {
		log.Fatal(err)
	}
	f, err := core.Prepare(ch, opts)
	if err != nil {
		log.Fatal(err)
	}
	archName, err := flowcmd.ParseArch(*arch)
	if err != nil {
		log.Fatal(err)
	}
	if archName == flowcmd.ArchWrapper {
		sweepTAMWidths(f, *tamWidths)
		return
	}
	if archName != flowcmd.ArchSOCET {
		log.Fatalf("-arch %s has no tradeoff curve to sweep; use socet or wrapper", archName)
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if shardCfg.Active() {
		runSharded(ctx, f, ch.Name, shardCfg, *jobs, *maxPoints, !*delta)
		return
	}
	points, err := explore.EnumerateCtx(ctx, f, explore.Options{Workers: *jobs, MaxPoints: *maxPoints, FullEval: !*delta})
	expired := errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)
	if err != nil && !expired {
		log.Fatal(err)
	}
	if expired {
		if len(points) == 0 {
			log.Fatalf("timeout %v expired before any design point completed", *timeout)
		}
		log.Printf("timeout %v expired: %d design points completed; printing the partial Pareto front", *timeout, len(points))
		fmt.Printf("Figure 10 (PARTIAL, timed out): test application time vs. chip-level DFT area (%s, %d design points)\n\n",
			ch.Name, len(points))
		points = explore.Pareto(points)
		fmt.Printf("(partial Pareto front: %d points)\n", len(points))
	} else {
		fmt.Printf("Figure 10: test application time vs. chip-level DFT area (%s, %d design points)\n\n",
			ch.Name, len(points))
		if *pareto {
			points = explore.Pareto(points)
			fmt.Printf("(Pareto front: %d points)\n", len(points))
		}
	}
	fmt.Print(report.FormatFigure10(report.Figure10(points)))
	if expired {
		return
	}

	fmt.Printf("\nTable 1: design space exploration for %s\n", ch.Name)
	fmt.Printf("%-58s %8s %9s %6s %6s\n", "Circuit description", "A.Ov.", "TApp.", "FCov.", "TEff.")
	for _, r := range report.Table1(f, points) {
		fmt.Printf("%-58s %8d %9d %5.1f%% %5.1f%%\n", r.Desc, r.AreaOv, r.TATime, r.FCov, r.TestEff)
	}
}

// sweepTAMWidths prints the wrapped-core/TAM width-versus-time tradeoff
// curve: one row per TAM width in the CSV list. The schedule TAT is
// non-increasing in width (internal/wrap proves this per width by
// minimizing over bus counts), so the curve is the wrapper analogue of
// the SOCET Pareto front.
func sweepTAMWidths(f *core.Flow, widthsCSV string) {
	widths, err := flowcmd.ParseIntList(widthsCSV)
	if err != nil {
		log.Fatalf("-tam-widths: %v", err)
	}
	fmt.Printf("Wrapper/TAM width sweep — %s\n", f.Chip.Name)
	fmt.Printf("  %5s %6s %9s %10s  %s\n", "W", "buses", "TApp", "DFT cells", "bus layout")
	for _, w := range widths {
		r := f.EvaluateWrapper(w, nil)
		layout := ""
		for b, bw := range r.BusWidths {
			if b > 0 {
				layout += " "
			}
			layout += fmt.Sprintf("%dw×%dc", bw, len(r.Buses[b]))
		}
		fmt.Printf("  %5d %6d %9d %10d  [%s]\n", w, r.NumBuses, r.ChipTAT, r.DFTCells(), layout)
	}
}

// runSharded runs the enumeration through the crash-safe shard runner.
// Complete runs print the canonical Pareto front — byte-identical for
// any shard count, so golden diffs work across partitionings. A run
// that could not finish (timeout, or a shard out of retries) prints
// what it has, attributes the missing ranges, and exits non-zero.
func runSharded(ctx context.Context, f *core.Flow, chip string, cfg *shard.Flags, jobs, maxPoints int, fullEval bool) {
	opts := cfg.Options()
	opts.Workers = jobs
	opts.MaxPoints = maxPoints
	opts.FullEval = fullEval
	res, err := shard.RunExplore(ctx, f, opts)
	if res == nil {
		log.Fatal(err)
	}
	complete := err == nil && len(res.Incomplete) == 0
	if complete {
		fmt.Printf("Sharded sweep: %s, Pareto front over %d selections\n\n", chip, res.Total)
	} else {
		fmt.Printf("Sharded sweep: %s, PARTIAL Pareto front over %d/%d selections\n\n", chip, res.Done, res.Total)
	}
	for _, p := range res.Front {
		fmt.Printf("%-40s %6d cells  %7d cycles\n", p.Label(), p.Cells, p.TAT)
	}
	if !complete {
		for _, r := range res.Incomplete {
			log.Printf("missing selections [%d,%d)", r.Lo, r.Hi)
		}
		if err != nil {
			log.Printf("sharded sweep incomplete: %v", err)
		}
		os.Exit(1)
	}
}
