// Command tradeoff regenerates Figure 10 (the test-application-time versus
// area-overhead curve over all core-version combinations) and Table 1 (the
// design-space exploration rows) for one of the example systems.
//
// Usage:
//
//	tradeoff [-system 1|2] [-pareto]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/obs/obscli"
	"repro/internal/report"
	"repro/internal/soc"
	"repro/internal/systems"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tradeoff: ")
	system := flag.Int("system", 1, "example system (1 or 2)")
	pareto := flag.Bool("pareto", false, "print only the Pareto front")
	jobs := flag.Int("j", 0, "parallel evaluation workers (0 = GOMAXPROCS); output is identical at any count")
	obsCfg := obscli.AddFlags(flag.CommandLine)
	flag.Parse()
	sess, err := obsCfg.Start()
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	var ch *soc.Chip
	switch *system {
	case 1:
		ch = systems.System1()
	case 2:
		ch = systems.System2()
	default:
		log.Fatal("-system must be 1 or 2")
	}
	f, err := core.Prepare(ch, nil)
	if err != nil {
		log.Fatal(err)
	}
	points, err := explore.EnumerateOpts(f, explore.Options{Workers: *jobs})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Figure 10: test application time vs. chip-level DFT area (%s, %d design points)\n\n",
		ch.Name, len(points))
	if *pareto {
		points = explore.Pareto(points)
		fmt.Printf("(Pareto front: %d points)\n", len(points))
	}
	fmt.Print(report.FormatFigure10(report.Figure10(points)))

	fmt.Printf("\nTable 1: design space exploration for %s\n", ch.Name)
	fmt.Printf("%-58s %8s %9s %6s %6s\n", "Circuit description", "A.Ov.", "TApp.", "FCov.", "TEff.")
	for _, r := range report.Table1(f, points) {
		fmt.Printf("%-58s %8d %9d %5.1f%% %5.1f%%\n", r.Desc, r.AreaOv, r.TATime, r.FCov, r.TestEff)
	}
}
