package main

import (
	"fmt"
	"log"
	"runtime"

	"repro/internal/core"
	"repro/internal/flowcmd"
	"repro/internal/socgen"
	"repro/internal/testbus"
	"repro/internal/wrap"
)

// runStudy is the -study mode: the SOCET vs wrapper vs test-bus
// comparison over seeded socgen chips, one row per (topology, core
// count), one wrapper column pair per TAM width. Every number is
// deterministic for a given seed, so the table diffs cleanly.
func runStudy(seed uint64, coresCSV, widthsCSV string, jobs int) {
	coreCounts, err := flowcmd.ParseIntList(coresCSV)
	if err != nil {
		log.Fatalf("-study-cores: %v", err)
	}
	widths, err := flowcmd.ParseIntList(widthsCSV)
	if err != nil {
		log.Fatalf("-study-widths: %v", err)
	}
	workers := jobs
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	fmt.Printf("Corpus study: SOCET vs wrapper/TAM vs test bus (socgen seed %d)\n", seed)
	fmt.Printf("%-6s %6s | %9s %8s | %9s %8s", "topo", "cores", "socet", "cells", "bus", "cells")
	for _, w := range widths {
		fmt.Printf(" | %8s %8s", fmt.Sprintf("wrapW=%d", w), "cells")
	}
	fmt.Printf(" | %s\n", "best TApp")
	for _, topo := range socgen.Topologies() {
		for _, n := range coreCounts {
			ch, err := socgen.Generate(socgen.Params{Seed: seed, Cores: n, Topology: topo})
			if err != nil {
				log.Fatalf("generate %s/%d: %v", topo, n, err)
			}
			f, err := core.Prepare(ch, flowcmd.GenVectorOverride(ch))
			if err != nil {
				log.Fatalf("prepare %s/%d: %v", topo, n, err)
			}
			e, err := f.Evaluate()
			if err != nil {
				log.Fatalf("evaluate %s/%d: %v", topo, n, err)
			}
			tb := testbus.Evaluate(ch)
			fmt.Printf("%-6s %6d | %9d %8d | %9d %8d",
				topo, n, e.TAT, e.ChipDFTCells(), tb.TotalTAT, tb.MuxCells())
			bestName, bestTAT := "socet", e.TAT
			if tb.TotalTAT < bestTAT {
				bestName, bestTAT = "bus", tb.TotalTAT
			}
			for _, w := range widths {
				r := f.EvaluateWrapper(w, &wrap.Options{Workers: workers})
				fmt.Printf(" | %8d %8d", r.ChipTAT, r.DFTCells())
				if r.ChipTAT < bestTAT {
					bestName, bestTAT = fmt.Sprintf("wrapW=%d", w), r.ChipTAT
				}
			}
			fmt.Printf(" | %s\n", bestName)
		}
	}
}
