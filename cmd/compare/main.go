// Command compare regenerates Tables 2 and 3: the area-overhead and
// testability comparison between SOCET and the FSCAN-BSCAN baseline, for
// both example systems.
//
// Usage:
//
//	compare [-system 1|2|0]   (0 = both)
//	compare -table2 | -table3 (default: both tables)
//	compare -timeout 30s      (partial Pareto front on expiry)
//	compare -fault "cut:FROM->TO,..."  (degradation report per system)
//	compare -campaign 100 -campaign-size 2 -campaign-seed 7
//	compare -arch wrapper -tam-width 4   (wrapped-core/TAM baseline)
//	compare -arch all                    (SOCET vs wrapper vs test bus)
//	compare -study                       (corpus study over socgen chips)
//
// -campaign runs a seeded random fault-injection campaign per system and
// prints its report instead of the tables. Campaigns accept the shard
// flags (-shards, -shard-index, -checkpoint, -resume): each shard owns a
// deterministic slice of the fault sets and checkpoints completed runs,
// and the merged report is identical to the single-process one.
//
// -arch selects the chip-level test architecture: socet (default, the
// paper's tables), wrapper (P1500-style wrapped cores on a TAM of width
// -tam-width), bus (dedicated test bus), or all (the three side by side).
// -study ignores -system and runs the SOCET-vs-wrapper-vs-bus comparison
// over seeded socgen chips across every topology family (-study-cores,
// -study-widths, -study-seed); the output is deterministic, so the table
// in EXPERIMENTS.md regenerates byte-identically.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/flowcmd"
	"repro/internal/obs/obscli"
	"repro/internal/report"
	"repro/internal/resil"
	"repro/internal/shard"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("compare: ")
	system := flag.Int("system", 0, "system to compare (1, 2, or 0 for both)")
	t2only := flag.Bool("table2", false, "print only Table 2")
	t3only := flag.Bool("table3", false, "print only Table 3")
	cycles := flag.Int("cycles", 192, "random functional cycles for the sequential columns")
	sample := flag.Int("sample", 1500, "sampled faults for the sequential columns")
	jobs := flag.Int("j", 0, "parallel evaluation workers (0 = GOMAXPROCS); output is identical at any count")
	timeout := flag.Duration("timeout", 0, "wall-clock bound on each enumeration (0 = none); on expiry the partial Pareto front is printed instead of the tables")
	fault := flag.String("fault", "", "inject faults (see socet -fault) and print each system's degradation report")
	delta := flag.Bool("delta", true, "evaluate single-core-change candidates incrementally; results are bit-identical, -delta=false forces full evaluations")
	campaign := flag.Int("campaign", 0, "run a random fault-injection campaign of `n` sets per system (instead of the tables)")
	campaignSize := flag.Int("campaign-size", 2, "faults per campaign set")
	campaignSeed := flag.Int64("campaign-seed", 1, "campaign fault-set seed")
	arch := flag.String("arch", "socet", "test architecture: socet (the tables), wrapper, bus, or all (side-by-side comparison)")
	tamWidth := flag.Int("tam-width", 4, "TAM width W for -arch wrapper/all")
	study := flag.Bool("study", false, "run the SOCET vs wrapper vs bus corpus study over socgen chips (ignores -system)")
	studyCores := flag.String("study-cores", "8,32,128,256", "comma-separated core counts for -study")
	studyWidths := flag.String("study-widths", "1,4,16", "comma-separated TAM widths for -study")
	studySeed := flag.Uint64("study-seed", 1, "generator seed for -study")
	obsCfg := obscli.AddFlags(flag.CommandLine)
	obsCfg.AddProgressFlag(flag.CommandLine)
	shardCfg := shard.AddFlags(flag.CommandLine)
	flag.Parse()
	sess, err := obsCfg.Start()
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	archName, err := flowcmd.ParseArch(*arch)
	if err != nil {
		log.Fatal(err)
	}
	if *study {
		runStudy(*studySeed, *studyCores, *studyWidths, *jobs)
		return
	}
	chips, err := flowcmd.Systems(*system)
	if err != nil {
		log.Fatal(err)
	}
	if *campaign > 0 && shardCfg.Active() && len(chips) > 1 {
		log.Fatal("sharded campaigns checkpoint per chip: pick -system 1 or -system 2")
	}
	both := !*t2only && !*t3only
	for _, ch := range chips {
		f, err := core.Prepare(ch, nil)
		if err != nil {
			log.Fatal(err)
		}
		ctx := context.Background()
		if *timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *timeout)
			defer cancel()
		}
		if *campaign > 0 {
			runCampaign(ctx, f, shardCfg, *campaign, *campaignSize, *campaignSeed)
			continue
		}
		if archName != flowcmd.ArchSOCET {
			printArch(f, archName, *tamWidth)
			continue
		}
		points, err := explore.EnumerateCtx(ctx, f, explore.Options{Workers: *jobs, FullEval: !*delta})
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			// Out of time: the completed points still form a consistent
			// partial sample — print its Pareto front instead of tables
			// built on an incomplete design space.
			front := explore.Pareto(points)
			log.Printf("%s: timeout %v expired after %d design points; partial Pareto front:", ch.Name, *timeout, len(points))
			for _, p := range front {
				fmt.Printf("  %-40s %6d cells  %7d cycles\n", p.Label(), p.ChipCells, p.TAT)
			}
			printDegradation(f, *fault)
			continue
		}
		if err != nil {
			log.Fatal(err)
		}
		if both || *t2only {
			t2, err := report.MakeTable2(f, points)
			if err != nil {
				log.Fatal(err)
			}
			printTable2(t2)
		}
		if both || *t3only {
			t3, err := report.MakeTable3(f, points, &report.Table3Options{Cycles: *cycles, FaultSample: *sample})
			if err != nil {
				log.Fatal(err)
			}
			printTable3(t3)
		}
		printDegradation(f, *fault)
	}
}

// printArch prints the selected architecture's bottom line; the wrapper
// architecture additionally prints its per-core chain balancing, which
// the golden test pins.
func printArch(f *core.Flow, arch string, tamWidth int) {
	rows, err := flowcmd.ArchRows(f, arch, tamWidth)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Test architectures — %s\n", f.Chip.Name)
	fmt.Printf("  %-8s %9s %10s  %s\n", "arch", "TApp", "DFT cells", "access")
	for _, r := range rows {
		fmt.Printf("  %-8s %9d %10d  %s\n", r.Arch, r.TAT, r.DFTCells, r.Detail)
	}
	if arch == flowcmd.ArchWrapper {
		fmt.Print(f.EvaluateWrapper(tamWidth, nil).Format())
	}
	fmt.Println()
}

// runCampaign executes a seeded fault-injection campaign through the
// crash-safe shard runner and prints its report. The report is the
// deterministic merge of whatever shards ran; with every set complete it
// is byte-identical to a single-process campaign, so golden diffs work
// across any partitioning. Incomplete campaigns print what they have,
// attribute the missing sets, and exit non-zero.
func runCampaign(ctx context.Context, f *core.Flow, cfg *shard.Flags, n, size int, seed int64) {
	c := &resil.Campaign{Flow: f, Runs: resil.RandomSets(f.Chip, n, size, seed), Seed: seed}
	res, err := shard.RunCampaign(ctx, c, cfg.Options())
	if res == nil {
		log.Fatal(err)
	}
	fmt.Print(res.Report.Format())
	if err != nil || len(res.Incomplete) > 0 {
		for _, r := range res.Incomplete {
			log.Printf("missing fault sets [%d,%d)", r.Lo, r.Hi)
		}
		if err != nil {
			log.Printf("campaign incomplete: %v", err)
		}
		os.Exit(1)
	}
}

// printDegradation injects the -fault spec (if any) into a copy of the
// flow's chip and prints the resulting degradation report. Faults naming
// nets or cores absent from this system are reported and skipped, so one
// spec can run against -system 0.
func printDegradation(f *core.Flow, spec string) {
	if spec == "" {
		return
	}
	faults, err := resil.ParseFaults(f.Chip, spec)
	if err != nil {
		log.Printf("%s: fault spec does not apply: %v", f.Chip.Name, err)
		return
	}
	damaged, err := resil.Inject(f.Chip, faults...)
	if err != nil {
		log.Fatal(err)
	}
	dev, err := f.Fork(damaged).EvaluateDegraded()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("injected %s: TApp %d cycles over testable subset\n%s\n",
		resil.FaultSetString(faults), dev.TAT, dev.Report.Format())
}

func printTable2(t *report.Table2) {
	fmt.Printf("Table 2: area overheads — %s (orig. %d cells; %% of original area)\n", t.System, t.OrigCells)
	fmt.Printf("  core-level DFT:   FSCAN %5.1f%%   HSCAN %5.1f%%\n", t.FscanPct, t.HscanPct)
	fmt.Printf("  chip-level DFT:   BSCAN %5.1f%%   SOCET min-area %5.1f%%   SOCET min-TApp %5.1f%%\n",
		t.BscanPct, t.SocetMinAreaPct, t.SocetMinTATPct)
	fmt.Printf("  core+chip total:  FSCAN-BSCAN %5.1f%%   SOCET min-area %5.1f%%   SOCET min-TApp %5.1f%%\n\n",
		t.FscanBscanTotalPct, t.SocetMinAreaTotalPct, t.SocetMinTATTotalPct)
}

func printTable3(t *report.Table3) {
	fmt.Printf("Table 3: testability results — %s\n", t.System)
	fmt.Printf("  %-22s FC %5.1f%%  TEff %5.1f%%\n", "original (no DFT):", t.OrigFC, t.OrigTEff)
	fmt.Printf("  %-22s FC %5.1f%%  TEff %5.1f%%\n", "HSCAN cores only:", t.HscanFC, t.HscanTEff)
	fmt.Printf("  %-22s FC %5.1f%%  TEff %5.1f%%  TApp %7d cycles\n",
		"FSCAN-BSCAN:", t.FscanBscanFC, t.FscanBscanTEff, t.FscanBscanTAT)
	fmt.Printf("  %-22s FC %5.1f%%  TEff %5.1f%%  TApp %7d (min area) / %d (min TApp) cycles\n\n",
		"SOCET:", t.SocetFC, t.SocetTEff, t.SocetMinArea, t.SocetMinTAT)
}
