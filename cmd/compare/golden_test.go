package main

import (
	"flag"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files with the current output")

// TestArchGolden locks the -arch output: the wrapper baseline's chain
// balancing and the three-way architecture comparison are deterministic,
// so any diff is a behavior change that must be reviewed (and blessed
// with -update).
func TestArchGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the flow via go run")
	}
	cases := []struct {
		name   string
		golden string
		args   []string
	}{
		{"wrapper", "wrapper1.golden", []string{"-arch", "wrapper", "-tam-width", "4", "-system", "1"}},
		{"all", "all1.golden", []string{"-arch", "all", "-system", "1"}},
		{"study", "study.golden", []string{"-study", "-study-cores", "8,16", "-study-widths", "1,4", "-j", "2"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out, err := exec.Command("go", append([]string{"run", "."}, tc.args...)...).CombinedOutput()
			if err != nil {
				t.Fatalf("compare %v: %v\n%s", tc.args, err, out)
			}
			golden := filepath.Join("testdata", tc.golden)
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, out, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run with -update to create it)", err)
			}
			if string(out) != string(want) {
				t.Errorf("output differs from %s (re-bless with -update if intended)\n--- got ---\n%s\n--- want ---\n%s",
					golden, out, want)
			}
		})
	}
}
