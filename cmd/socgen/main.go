// Command socgen generates seeded random SoCs for the SOCET flow: a
// deterministic dump of the chip's cores, pins and nets, optionally the
// full flow (version ladders, schedule, TAT) and the property-based
// differential verification of internal/proptest.
//
// Usage:
//
//	socgen -seed 7                       # dump one chip
//	socgen -seed 7 -cores 12 -topology mesh -flow [-timeout 30s]
//	socgen -count 20 -verify             # verify a sweep of seeds
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/flowcmd"
	"repro/internal/obs/obscli"
	"repro/internal/proptest"
	"repro/internal/soc"
	"repro/internal/socgen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("socgen: ")
	seed := flag.Uint64("seed", 1, "generator seed")
	cores := flag.Int("cores", 0, "logic core count (0 = derived from the seed)")
	topology := flag.String("topology", "auto", "interconnect family: auto, chain, mesh, dag, hub")
	count := flag.Int("count", 1, "number of consecutive seeds starting at -seed")
	flow := flag.Bool("flow", false, "run the SOCET flow and print the schedule summary")
	verify := flag.Bool("verify", false, "run the full property battery (implies the flow)")
	timeout := flowcmd.AddTimeout(flag.CommandLine)
	obsCfg := obscli.AddFlags(flag.CommandLine)
	flag.Parse()
	ctx, cancel := flowcmd.Context(*timeout)
	defer cancel()
	sess, err := obsCfg.Start()
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	topo, err := socgen.ParseTopology(*topology)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < *count; i++ {
		p := socgen.Params{Seed: *seed + uint64(i), Cores: *cores, Topology: topo}
		if i > 0 {
			fmt.Println()
		}
		if err := run(ctx, p, *flow, *verify); err != nil {
			log.Fatal(err)
		}
	}
}

func run(ctx context.Context, p socgen.Params, flow, verify bool) error {
	ch, err := socgen.Generate(p)
	if err != nil {
		return err
	}
	dump(ch)
	if verify {
		st, err := proptest.Check(p)
		if err != nil {
			min := proptest.Shrink(p)
			return fmt.Errorf("verification failed: %w\nshrunk reproducer: -seed %d -cores %d -topology %s",
				err, min.Seed, min.Cores, min.Topology)
		}
		fmt.Printf("verified: %d paths, %d replayed on chipsim, %d virtual, %d fully simulated cores\n",
			st.Paths, st.Replayed, st.Virtual, st.FullCores)
		return nil
	}
	if !flow {
		return nil
	}
	f, err := core.Prepare(ch, flowcmd.GenVectorOverride(ch))
	if err != nil {
		return err
	}
	e, err := f.EvaluateCtx(ctx)
	if err != nil {
		return err
	}
	fmt.Println("flow:")
	for _, c := range ch.TestableCores() {
		fmt.Printf("  %s: %d versions\n", c.Name, len(c.Versions))
	}
	for _, cs := range e.Sched.Cores {
		fmt.Printf("  %s: %d vectors x period %d + tail %d = TAT %d\n",
			cs.Core, cs.HSCANVectors, cs.Period, cs.Tail, cs.TAT)
	}
	fmt.Printf("  chip TAT %d cycles, DFT overhead %d cells\n", e.TAT, e.ChipDFTCells())
	return nil
}

func dump(ch *soc.Chip) {
	fmt.Printf("chip %s\n", ch.Name)
	for _, c := range ch.Cores {
		kind := "core"
		if c.Memory {
			kind = "memory"
		}
		fmt.Printf("  %s %s: %d in, %d out, %d regs, %d muxes, %d units\n",
			kind, c.Name, len(c.RTL.Inputs()), len(c.RTL.Outputs()),
			len(c.RTL.Regs), len(c.RTL.Muxes), len(c.RTL.Units))
	}
	fmt.Printf("  pins: %d PIs, %d POs\n", len(ch.PIs), len(ch.POs))
	for _, n := range ch.Nets {
		fmt.Printf("  net %s\n", n)
	}
}
