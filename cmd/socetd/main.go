// Command socetd is the crash-tolerant evaluation daemon: an HTTP/JSON
// API (internal/serve/api) over the journaled job manager
// (internal/serve/job), running evaluate, campaign and explore jobs on
// a lease-based worker pool.
//
// Usage:
//
//	socetd -dir state/ [-addr 127.0.0.1:0] [-workers N] [-queue 8]
//	       [-lease 30s] [-job-timeout 10m] [-drain-timeout 30s]
//	       [-checkpoint-every 5s]
//	       [-trace out.ndjson] [-metrics out.json] [-obs 127.0.0.1:0]
//
// The state directory holds the job journal and every running job's
// shard checkpoints. Kill the daemon however you like — SIGKILL
// included — and the next start recovers every unfinished job from the
// journal and re-runs it incrementally from its checkpoints, converging
// on the byte-identical result an uninterrupted run produces.
//
// SIGTERM (or SIGINT) drains gracefully: admission stops (readyz flips
// to 503, new submissions get 503 + Retry-After), in-flight jobs get
// the drain deadline to finish, and whatever misses it is checkpointed
// and left journaled for the next start. The bound address is printed
// on startup as "listening on ADDR" so scripts can use -addr :0.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs/obscli"
	"repro/internal/serve/api"
	"repro/internal/serve/job"
	"repro/internal/shard"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("socetd: ")
	addr := flag.String("addr", "127.0.0.1:0", "address to serve the API on (port 0 picks a free port)")
	dir := flag.String("dir", "", "state directory for the job journal and shard checkpoints (required)")
	workers := flag.Int("workers", 0, "worker pool width (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 8, "max unfinished jobs before submissions get 429")
	lease := flag.Duration("lease", 30*time.Second, "heartbeat lease TTL for shard work units")
	jobTimeout := flag.Duration("job-timeout", 10*time.Minute, "default per-job deadline (a spec's timeout overrides it)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long SIGTERM waits for in-flight jobs before checkpointing them for the next start")
	every := flag.Duration("checkpoint-every", 0, "shard checkpoint interval (0 = the shard default)")
	retries := flag.Int("retries", 0, "attempts per shard unit before its job fails (0 = default)")
	obsCfg := obscli.AddFlags(flag.CommandLine)
	flag.Parse()
	if *dir == "" {
		log.Fatal("-dir is required")
	}

	sess, err := obsCfg.Start()
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	m, err := job.New(job.Options{
		Dir:        *dir,
		Workers:    *workers,
		QueueLimit: *queue,
		LeaseTTL:   *lease,
		Retry:      shard.Retry{Attempts: *retries},
		Timeout:    *jobTimeout,
		Every:      *every,
	})
	if err != nil {
		log.Fatal(err)
	}
	if n := m.Unfinished(); n > 0 {
		log.Printf("recovered %d unfinished job(s) from %s", n, *dir)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: api.New(m, api.Options{})}
	log.Printf("listening on %s (state in %s)", ln.Addr(), *dir)
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	select {
	case s := <-sig:
		log.Printf("%s: draining (deadline %v)", s, *drainTimeout)
	case err := <-serveErr:
		m.Close()
		log.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := m.Drain(ctx); err != nil {
		log.Printf("drain deadline exceeded; unfinished jobs are checkpointed for the next start")
	}
	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	if err := srv.Shutdown(sctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("http shutdown: %v", err)
	}
	log.Printf("drained")
}
