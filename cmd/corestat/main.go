// Command corestat prints the transparency version ladder of a core — the
// latency/overhead trade-off tables of the paper's Figures 6 and 8 — plus
// its HSCAN chain configuration.
//
// Usage:
//
//	corestat [-core cpu|preprocessor|display|graphics|gcd|x25]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"repro/internal/hscan"
	"repro/internal/obs/obscli"
	"repro/internal/report"
	"repro/internal/rtl"
	"repro/internal/soc"
	"repro/internal/systems"
	"repro/internal/trans"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("corestat: ")
	name := flag.String("core", "cpu", "core to analyze: cpu, preprocessor, display, graphics, gcd, x25")
	obsCfg := obscli.AddFlags(flag.CommandLine)
	flag.Parse()
	sess, err := obsCfg.Start()
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	builders := map[string]func() *rtl.Core{
		"cpu":          systems.CPU,
		"preprocessor": systems.Preprocessor,
		"display":      systems.Display,
		"graphics":     systems.Graphics,
		"gcd":          systems.GCD,
		"x25":          systems.X25,
	}
	build, ok := builders[strings.ToLower(*name)]
	if !ok {
		log.Fatalf("unknown core %q", *name)
	}
	c := build()
	scan, err := hscan.Insert(c)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d registers (%d flip-flops), %d muxes, %d units\n",
		c.Name, len(c.Regs), c.FFCount(), len(c.Muxes), len(c.Units))
	fmt.Printf("\nHSCAN chains (insertion cost %d cells, depth %d):\n", scanCells(scan), scan.MaxDepth)
	for i, ch := range scan.Chains {
		fmt.Printf("  chain %d: %s\n", i+1, strings.Join(ch.Regs, " -> "))
	}
	g, err := trans.Build(c, scan)
	if err != nil {
		log.Fatal(err)
	}
	vs, err := trans.Versions(g)
	if err != nil {
		log.Fatal(err)
	}
	sc := &soc.Core{Name: c.Name, RTL: c, Scan: scan, Versions: vs}
	fmt.Printf("\n%s", report.FormatVersionTable(c.Name, report.VersionTable(sc)))
}

func scanCells(r *hscan.Result) int {
	a := r.Area
	return a.Cells()
}
