#!/bin/sh
# Crash-resume smoke: run a sharded sweep, SIGKILL one shard mid-flight,
# resume, and require the merged front to be byte-identical to the
# unsharded golden. This drives the real binaries end to end — the
# process-level complement of internal/shard's in-process crash harness.
#
# The workload (seed 9, 12 cores, 300-point cap) is the same one the
# crash-harness tests use: big enough that a shard is reliably mid-flight
# when the kill lands, small enough to finish in seconds.
set -eu

cd "$(dirname "$0")/.."

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
BIN="$WORK/tradeoff"
CK="$WORK/sweep"
GEN="-gen -seed 9 -cores 12 -max-points 300"

go build -o "$BIN" ./cmd/tradeoff

echo "==> golden: unsharded sweep"
"$BIN" $GEN -shards 1 -shard-index 0 > "$WORK/golden.txt"

echo "==> shard 0/2: run to completion"
"$BIN" $GEN -shards 2 -shard-index 0 -checkpoint "$CK" -checkpoint-every 5ms > /dev/null

echo "==> shard 1/2: SIGKILL on first checkpoint"
"$BIN" $GEN -shards 2 -shard-index 1 -checkpoint "$CK" -checkpoint-every 1ms > /dev/null 2>&1 &
PID=$!
CKFILE="$CK.shard1-of-2.ck"
i=0
while [ ! -s "$CKFILE" ]; do
    if ! kill -0 "$PID" 2>/dev/null; then
        echo "shard 1 finished before the kill; checkpoint must still exist" >&2
        [ -s "$CKFILE" ] || { echo "no checkpoint written" >&2; exit 1; }
        break
    fi
    i=$((i + 1))
    [ "$i" -gt 2000 ] && { echo "shard 1 never checkpointed" >&2; kill -9 "$PID"; exit 1; }
    sleep 0.01
done
kill -9 "$PID" 2>/dev/null || true
wait "$PID" 2>/dev/null || true
echo "    killed shard 1 (checkpoint $(wc -c < "$CKFILE") bytes on disk)"

echo "==> resume + merge all shards"
"$BIN" $GEN -shards 2 -shard-index -1 -checkpoint "$CK" -resume > "$WORK/merged.txt"

echo "==> diff merged vs golden"
if ! diff -u "$WORK/golden.txt" "$WORK/merged.txt"; then
    echo "crash-resume merge is not byte-identical to the unsharded run" >&2
    exit 1
fi

echo "==> ok"
