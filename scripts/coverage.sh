#!/bin/sh
# Coverage gate: run the full test suite with coverage over internal/...
# and fail if the total drops below the recorded baseline. Raise the
# baseline when new tests push coverage up; never lower it to make a
# regression pass.
set -eu

cd "$(dirname "$0")/.."

BASELINE=90.1

profile=$(mktemp /tmp/cover.XXXXXX.out)
trap 'rm -f "$profile"' EXIT

go test -count=1 -coverprofile="$profile" -coverpkg=./internal/... ./... > /dev/null

total=$(go tool cover -func="$profile" | awk '/^total:/ {sub(/%/, "", $3); print $3}')

echo "coverage: ${total}% (baseline ${BASELINE}%)"
awk -v t="$total" -v b="$BASELINE" 'BEGIN { exit (t+0 >= b+0) ? 0 : 1 }' || {
    echo "coverage ${total}% fell below the ${BASELINE}% baseline" >&2
    exit 1
}
