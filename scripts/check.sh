#!/bin/sh
# Repository health check: formatting, vet, and the full test suite under
# the race detector. Run from the repo root (or via `make check`).
set -eu

cd "$(dirname "$0")/.."

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> go test -race (parallel enumeration)"
go test -race -run 'TestEnumerateParallel|TestCacheShared' ./internal/explore/

echo "==> go test -race (delta-vs-full equivalence)"
go test -race -count=1 -run 'TestDelta|TestMultiMatchesSingle|TestMultiDuplicate|TestMultiUnreachable|TestFinderReuse|TestCloneWithVersion|TestCacheRejects|TestCacheAccepts' \
    ./internal/core/ ./internal/ccg/ ./internal/explore/

echo "==> go test -race (wrapper corpus smoke: replay + tamper detection)"
go test -race -count=1 -run 'TestWrappedChips|TestWrapReplayDetectsLies' ./internal/proptest/ -proptest.n=12

echo "==> go test -race ./..."
go test -race ./...

echo "==> go test -fuzz=FuzzValidate (10s smoke)"
go test -fuzz=FuzzValidate -fuzztime=10s -run '^$' ./internal/rtl/

echo "==> go test -fuzz=FuzzParseFaults (10s smoke)"
go test -fuzz=FuzzParseFaults -fuzztime=10s -run '^$' ./internal/resil/

echo "==> go test -fuzz=FuzzCheckpointDecode (10s smoke)"
go test -fuzz=FuzzCheckpointDecode -fuzztime=10s -run '^$' ./internal/shard/

echo "==> go test -fuzz=FuzzJobSpec (10s smoke)"
go test -fuzz=FuzzJobSpec -fuzztime=10s -run '^$' ./internal/serve/job/

echo "==> go test -fuzz=FuzzTAMAssign (10s smoke)"
go test -fuzz=FuzzTAMAssign -fuzztime=10s -run '^$' ./internal/wrap/

echo "==> crash-resume smoke (scripts/crashsmoke.sh)"
sh scripts/crashsmoke.sh

echo "==> daemon crash smoke (scripts/daemonsmoke.sh)"
sh scripts/daemonsmoke.sh

echo "==> bench trajectory smoke (scripts/bench.sh -smoke)"
sh scripts/bench.sh -smoke

echo "==> ok"
