#!/bin/sh
# Daemon crash smoke: start socetd, submit a sharded campaign over HTTP,
# SIGKILL the daemon mid-flight, restart it on the same state directory,
# and require the recovered job's result to be byte-identical to the
# single-process `compare -campaign` golden. Finish with a SIGTERM drain
# and require a clean exit. This is the end-to-end complement of the
# in-process crash tests in internal/serve/job.
set -eu

cd "$(dirname "$0")/.."

WORK=$(mktemp -d)
DAEMON_PID=""
cleanup() {
    if [ -n "$DAEMON_PID" ]; then
        kill -9 "$DAEMON_PID" 2>/dev/null || true
    fi
    rm -rf "$WORK"
}
trap cleanup EXIT

RUNS=24
SIZE=2
SEED=5
SPEC="{\"type\":\"campaign\",\"chip\":{\"system\":1},\"shards\":4,\"runs\":$RUNS,\"set_size\":$SIZE,\"seed\":$SEED}"

go build -o "$WORK/socetd" ./cmd/socetd
go build -o "$WORK/compare" ./cmd/compare

echo "==> golden: single-process compare -campaign"
"$WORK/compare" -system 1 -campaign "$RUNS" -campaign-size "$SIZE" -campaign-seed "$SEED" > "$WORK/golden.txt"

# start_daemon launches socetd on the shared state dir and sets ADDR from
# its "listening on" line (the daemon binds port 0).
start_daemon() {
    : > "$WORK/log.txt"
    "$WORK/socetd" -dir "$WORK/state" -addr 127.0.0.1:0 -checkpoint-every 1ms 2>> "$WORK/log.txt" &
    DAEMON_PID=$!
    i=0
    while ! grep -q "listening on" "$WORK/log.txt"; do
        if ! kill -0 "$DAEMON_PID" 2>/dev/null; then
            echo "daemon died at startup:" >&2
            cat "$WORK/log.txt" >&2
            exit 1
        fi
        i=$((i + 1))
        [ "$i" -gt 600 ] && { echo "daemon never came up" >&2; exit 1; }
        sleep 0.05
    done
    ADDR=$(sed -n 's/.*listening on \([0-9.]*:[0-9]*\).*/\1/p' "$WORK/log.txt" | head -1)
    [ -n "$ADDR" ] || { echo "could not parse daemon address" >&2; cat "$WORK/log.txt" >&2; exit 1; }
}

echo "==> start daemon, submit the sharded campaign"
start_daemon
curl -sf -X POST --data "$SPEC" "http://$ADDR/jobs" > "$WORK/submit.json"
JOB=$(sed -n 's/.*"id": "\([^"]*\)".*/\1/p' "$WORK/submit.json" | head -1)
[ -n "$JOB" ] || { echo "submit returned no job id:" >&2; cat "$WORK/submit.json" >&2; exit 1; }
echo "    submitted $JOB to $ADDR"

echo "==> SIGKILL the daemon once the job has checkpointed"
i=0
while true; do
    if ls "$WORK/state/job-$JOB".shard*.ck >/dev/null 2>&1; then
        break
    fi
    i=$((i + 1))
    # Finished jobs delete their checkpoints; the restart then only has
    # to serve the journaled result, which the diff below still gates.
    # Checked rarely — the tight ls loop is what catches the window.
    if [ $((i % 100)) -eq 0 ] && curl -s "http://$ADDR/jobs/$JOB" | grep -q '"state": "done"'; then
        echo "    (job finished before the kill landed)"
        break
    fi
    [ "$i" -gt 12000 ] && { echo "job never checkpointed" >&2; cat "$WORK/log.txt" >&2; exit 1; }
    sleep 0.01
done
kill -9 "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=""
echo "    killed daemon ($(ls "$WORK/state" | wc -l | tr -d ' ') files in state dir)"

echo "==> restart on the same state dir; fetch the recovered result"
start_daemon
curl -sf "http://$ADDR/jobs/$JOB/result?wait=5m" > "$WORK/result.txt"

echo "==> diff recovered result vs single-process golden"
if ! diff -u "$WORK/golden.txt" "$WORK/result.txt"; then
    echo "recovered result is not byte-identical to the golden" >&2
    exit 1
fi

echo "==> graceful drain (SIGTERM)"
kill -TERM "$DAEMON_PID"
if ! wait "$DAEMON_PID"; then
    echo "daemon exited non-zero on SIGTERM:" >&2
    cat "$WORK/log.txt" >&2
    exit 1
fi
DAEMON_PID=""
grep -q "drained" "$WORK/log.txt" || { echo "daemon log missing drain confirmation" >&2; cat "$WORK/log.txt" >&2; exit 1; }

echo "==> ok"
