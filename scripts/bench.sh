#!/bin/sh
# Perf-trajectory harness: run the tracked benchmark suite, turn the
# output into a structured BENCH_<n>.json snapshot (schema in
# internal/obs/benchjson), and diff it against the previous committed
# snapshot, failing on regressions above the threshold.
#
#   scripts/bench.sh             full run; writes the next BENCH_<n>.json
#   scripts/bench.sh -smoke      1x iterations; schema + diff machinery
#                                exercised against the committed baseline
#                                with a loose threshold, nothing written
#   scripts/bench.sh -delta      delta-vs-full head-to-head on the
#                                generated-chip ladder; prints both
#                                series side by side, writes nothing
#
# Tunables (environment): BENCHTIME (full-run -benchtime, default 1s),
# THRESHOLD (allowed fractional slowdown, default 0.30 full / 100 smoke).
set -eu

cd "$(dirname "$0")/.."

MODE=full
[ "${1:-}" = "-smoke" ] && MODE=smoke
[ "${1:-}" = "-delta" ] && MODE=delta

if [ "$MODE" = delta ]; then
    BT=${BENCHTIME:-1s}
    echo "==> delta vs full on the generated-chip ladder (-benchtime $BT)"
    go test -run '^$' -bench 'BenchmarkGeneratedChip(Full)?$' -benchmem -benchtime "$BT" .
    exit 0
fi

REV=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
DATE=$(date -u +%Y-%m-%d)
RAW=$(mktemp)
trap 'rm -f "$RAW" /tmp/bench_smoke_$$.json' EXIT

if [ "$MODE" = smoke ]; then
    BT=1x
    THRESHOLD=${THRESHOLD:-100}
else
    BT=${BENCHTIME:-1s}
    THRESHOLD=${THRESHOLD:-0.30}
fi

# The tracked suite: the enumeration benches (serial/parallel/cached),
# the generated-chip scaling ladder, the wrapped-core/TAM evaluator, the
# degradation campaign, and the obs overhead micro-benches. One raw
# stream; pkg: headers keep names unambiguous.
echo "==> bench suite (-benchtime $BT)"
go test -run '^$' -bench 'BenchmarkEnumerate' -benchmem -benchtime "$BT" ./internal/explore/ | tee "$RAW"
go test -run '^$' -bench 'BenchmarkGeneratedChip|BenchmarkWrappedChip|BenchmarkDegradationCampaign' -benchmem -benchtime "$BT" . | tee -a "$RAW"
go test -run '^$' -bench '.' -benchmem -benchtime "$BT" ./internal/obs/ | tee -a "$RAW"

# Latest committed snapshot, if any (BENCH_10 sorts after BENCH_9).
PREV=$(ls BENCH_*.json 2>/dev/null | sort -t_ -k2 -n | tail -1 || true)

if [ "$MODE" = smoke ]; then
    OUT=/tmp/bench_smoke_$$.json
    echo "==> benchsnap -parse (smoke)"
    go run ./cmd/benchsnap -parse -rev "$REV" -date "$DATE" -in "$RAW" -out "$OUT"
    echo "==> benchsnap -check"
    go run ./cmd/benchsnap -check "$OUT"
    if [ -n "$PREV" ]; then
        # A 1x run measures true cost plus ~1µs of harness overhead, so
        # sub-10µs baselines (the obs micro-benches) are pure noise here;
        # the floor skips them. The full run diffs with no floor.
        echo "==> benchsnap -diff $PREV (loose threshold $THRESHOLD, floor 10us)"
        go run ./cmd/benchsnap -diff "$PREV,$OUT" -threshold "$THRESHOLD" -floor 10000
    else
        echo "==> no committed BENCH_*.json yet; diff skipped"
    fi
    echo "==> bench smoke ok"
    exit 0
fi

if [ -n "$PREV" ]; then
    N=$(( $(printf '%s' "$PREV" | sed 's/BENCH_\([0-9]*\).json/\1/') + 1 ))
else
    N=0
fi
OUT=BENCH_$N.json
echo "==> benchsnap -parse -> $OUT"
go run ./cmd/benchsnap -parse -rev "$REV" -date "$DATE" -in "$RAW" -out "$OUT"
go run ./cmd/benchsnap -check "$OUT"
if [ -n "$PREV" ]; then
    echo "==> benchsnap -diff $PREV,$OUT (threshold $THRESHOLD)"
    go run ./cmd/benchsnap -diff "$PREV,$OUT" -threshold "$THRESHOLD"
fi
echo "==> wrote $OUT"
