// Package repro is a from-scratch Go reproduction of "A Fast and Low Cost
// Testing Technique for Core-Based System-on-Chip" (Ghosh, Dey, Jha;
// DAC 1998) — the SOCET transparency-based SoC test methodology.
//
// The implementation lives under internal/: the RTL model and simulator
// (rtl, rtlsim), the gate-level substrate with synthesis, ATPG and fault
// simulation (gate, synth, atpg, fsim), the paper's core-level DFT (hscan,
// trans), the chip-level method (ccg, sched, explore, ctrl), baselines
// (bscan, testbus, bist), the two evaluation systems (systems), the
// orchestrating flow (core) and the table/figure assembly (report).
//
// bench_test.go in this directory regenerates every table and figure of
// the paper's evaluation: run
//
//	go test -bench=. -benchmem
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for measured
// results against the paper's numbers.
package repro
